//! Online query benchmarks.
//!
//! * `query_latency` — per-query latency of every ranking method (the
//!   microscopic view of Table VI: CubeLSI's cosine matching vs FolkRank's
//!   power iteration).
//! * `query_throughput` — queries/sec of the CubeLSI serving paths on the
//!   300 users × 250 resources × 15k assignments datagen preset: the
//!   exhaustive full-sort reference vs the MaxScore per-posting path vs
//!   the block-max path (reused sessions, zero steady-state allocation)
//!   vs the parallel batched API, at k ∈ {10, 100} over a 128-query
//!   evaluation workload.
//!
//! Besides the criterion numbers, a machine-readable report is written to
//! `BENCH_query.json` at the workspace root (queries/s per preset, per k,
//! per serving path, single core), so the perf trajectory of the online
//! path is tracked in-repo alongside `BENCH_build.json`. Three presets
//! are measured: the small 300×250×15k pipeline preset, a 20k-resource
//! corpus with multi-hundred-posting lists where block skipping has real
//! room to work, and the `huge_1m` stress preset (1.2 M resources at
//! full scale; `CUBELSI_BENCH_SCALE` shrinks it for CI smokes). Paths:
//! the exhaustive reference, MaxScore, block-max, the compressed
//! decode-and-admit path, and a 4-shard scatter-gather [`ShardSet`]
//! answered through the adaptive dispatcher (coalesced mirror /
//! sequential scatter / pooled fan-out — the per-node cost of the
//! sharded TCP serving topology). Each preset additionally records
//! multi-threaded rows — the batched and sharded-batch paths through
//! the persistent executor at pool sizes {1, 4, 8} with the fraction
//! of inline dispatch decisions — and the memory story the compressed
//! format exists for: hot bytes-per-posting (compressed vs
//! uncompressed), on-disk index artifact bytes, and the process RSS
//! after serving.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cubelsi_baselines::{
    BowRanker, CubeSim, CubeSimMode, FolkRank, FolkRankConfig, FreqRanker, LsiConfig, LsiRanker,
    Ranker,
};
use cubelsi_core::shard::{self, ShardSet};
use cubelsi_core::{
    exec, persist, ConceptAssignment, ConceptIndex, ConceptModel, CubeLsi, CubeLsiConfig,
    PruningStrategy, QueryEngine,
};
use cubelsi_datagen::{generate, huge_1m, GeneratedDataset, GeneratorConfig};
use cubelsi_eval::{generate_workload, WorkloadConfig};
use cubelsi_folksonomy::TagId;
use cubelsi_linalg::parallel;
use std::hint::black_box;
use std::time::Instant;

fn bench_query_latency(c: &mut Criterion) {
    let ds = generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 12,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    });
    let f = &ds.folksonomy;

    let cubelsi = CubeLsi::build(
        f,
        &CubeLsiConfig {
            core_dims: Some((16, 16, 16)),
            num_concepts: Some(12),
            max_als_iters: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let folkrank = FolkRank::build(f, &FolkRankConfig::default());
    let freq = FreqRanker::build(f);
    let bow = BowRanker::build(f);
    let lsi = LsiRanker::build(
        f,
        &LsiConfig {
            rank: Some(16),
            num_concepts: Some(12),
            ..Default::default()
        },
    )
    .unwrap();
    let cubesim = CubeSim::build(
        f,
        &cubelsi_baselines::cubesim::CubeSimConfig {
            mode: CubeSimMode::SparseOptimized,
            num_concepts: Some(12),
            ..Default::default()
        },
    )
    .unwrap();

    // A 3-tag query over frequent tags.
    let query: Vec<TagId> = (0..3).map(TagId::from_index).collect();

    let cubelsi_ranker = cubelsi_baselines::CubeLsiRanker(cubelsi);
    let mut group = c.benchmark_group("query_latency");
    let rankers: Vec<(&str, &dyn Ranker)> = vec![
        ("CubeLSI", &cubelsi_ranker),
        ("FolkRank", &folkrank),
        ("Freq", &freq),
        ("BOW", &bow),
        ("LSI", &lsi),
        ("CubeSim", &cubesim),
    ];
    for (name, ranker) in rankers {
        group.bench_function(name, |bencher| {
            bencher.iter(|| black_box(ranker.search_ids(&query, 20)));
        });
    }
    group.finish();
}

/// The ISSUE-1 preset: 300 users × 250 resources × 15k assignments.
fn throughput_dataset() -> GeneratedDataset {
    generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 15,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    })
}

fn bench_query_throughput(c: &mut Criterion) {
    let ds = throughput_dataset();
    let engine = CubeLsi::build(
        &ds.folksonomy,
        &CubeLsiConfig {
            core_dims: Some((16, 16, 16)),
            num_concepts: Some(15),
            max_als_iters: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let queries: Vec<Vec<TagId>> = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 128,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.tags)
    .collect();

    let mut group = c.benchmark_group("query_throughput");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.sample_size(20);

    let mut maxscore = engine.engine().clone();
    maxscore.set_strategy(PruningStrategy::MaxScore);
    let mut blockmax = engine.engine().clone();
    blockmax.set_strategy(PruningStrategy::BlockMax);

    for &k in &[10usize, 100] {
        // Seed path: exhaustive accumulation + full sort, per query.
        group.bench_function(format!("exact_fullsort_k{k}"), |bencher| {
            bencher.iter(|| {
                for q in &queries {
                    black_box(engine.engine().search_tags_exact(engine.concepts(), q, k));
                }
            });
        });
        // The two pruned strategies on reused sessions (the steady-state
        // zero-allocation serving loop).
        for (name, pruned) in [("maxscore", &maxscore), ("blockmax", &blockmax)] {
            group.bench_function(format!("{name}_k{k}"), |bencher| {
                let mut session = pruned.session();
                let mut out = Vec::new();
                bencher.iter(|| {
                    for q in &queries {
                        pruned.search_tags_with(&mut session, engine.concepts(), q, k, &mut out);
                        black_box(out.len());
                    }
                });
            });
        }
        // Batched: the default pruned path fanned across the worker pool.
        group.bench_function(format!("batched_k{k}"), |bencher| {
            bencher.iter(|| black_box(engine.search_batch(&queries, k)));
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// BENCH_query.json report
// ---------------------------------------------------------------------------

/// One preset of the report: an engine (any concept model) + workload.
/// The corpus and a hard concept model ride along so the sharded
/// scatter-gather path can build a [`cubelsi_core::shard::ShardSet`]
/// from the same engine.
struct ReportPreset {
    name: &'static str,
    users: usize,
    tags: usize,
    resources: usize,
    assignments: usize,
    num_concepts: usize,
    engine: QueryEngine,
    model: Box<dyn ConceptAssignment>,
    folksonomy: cubelsi_folksonomy::Folksonomy,
    hard_model: ConceptModel,
    queries: Vec<Vec<TagId>>,
}

/// The small preset serves through the full distilled pipeline model.
fn small_preset() -> ReportPreset {
    let ds = throughput_dataset();
    let built = CubeLsi::build(
        &ds.folksonomy,
        &CubeLsiConfig {
            core_dims: Some((16, 16, 16)),
            num_concepts: Some(15),
            max_als_iters: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let queries: Vec<Vec<TagId>> = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 128,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.tags)
    .collect();
    ReportPreset {
        name: "small_300x250x15k",
        users: ds.folksonomy.num_users(),
        tags: ds.folksonomy.num_tags(),
        resources: ds.folksonomy.num_resources(),
        assignments: ds.folksonomy.num_assignments(),
        num_concepts: built.concepts().num_concepts(),
        engine: built.engine().clone(),
        model: Box::new(built.concepts().clone()),
        folksonomy: ds.folksonomy.clone(),
        hard_model: built.concepts().clone(),
        queries,
    }
}

/// The large preset skips the offline pipeline (Tucker on a 20k-resource
/// corpus is not what this report measures) and indexes a deterministic
/// hard concept model directly — the engine does not care where the model
/// came from, and posting lists reach thousands of entries.
fn large_preset() -> ReportPreset {
    let ds = generate(&GeneratorConfig {
        users: 500,
        resources: 20_000,
        concepts: 24,
        assignments: 300_000,
        seed: 97,
        ..Default::default()
    });
    let f = &ds.folksonomy;
    let num_concepts = 24;
    let assignments: Vec<usize> = (0..f.num_tags())
        .map(|t| (t * 7 + 3) % num_concepts)
        .collect();
    let model = ConceptModel::from_assignments(assignments, 1.0);
    let engine = QueryEngine::new(ConceptIndex::build(f, &model));
    let queries: Vec<Vec<TagId>> = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 64,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.tags)
    .collect();
    ReportPreset {
        name: "large_500x20000x300k",
        users: f.num_users(),
        tags: f.num_tags(),
        resources: f.num_resources(),
        assignments: f.num_assignments(),
        num_concepts,
        engine,
        model: Box::new(model.clone()),
        folksonomy: f.clone(),
        hard_model: model,
        queries,
    }
}

/// The million-resource stress preset (`cubelsi_datagen::huge_1m`): a
/// 1.2 M-resource corpus under a deterministic hard concept model, where
/// the hot index footprint — not the model — dominates memory and the
/// compressed posting format earns its keep. `CUBELSI_BENCH_SCALE`
/// (default 1.0) shrinks it proportionally so CI can smoke the same code
/// path in seconds.
fn huge_preset() -> ReportPreset {
    let scale = std::env::var("CUBELSI_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0);
    let preset = huge_1m(scale, 5);
    let ds = generate(&preset.config);
    let f = &ds.folksonomy;
    let num_concepts = preset.config.concepts;
    let assignments: Vec<usize> = (0..f.num_tags())
        .map(|t| (t * 11 + 5) % num_concepts)
        .collect();
    let model = ConceptModel::from_assignments(assignments, 1.0);
    let engine = QueryEngine::new(ConceptIndex::build(f, &model));
    let queries: Vec<Vec<TagId>> = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 32,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.tags)
    .collect();
    ReportPreset {
        name: "huge_1m",
        users: f.num_users(),
        tags: f.num_tags(),
        resources: f.num_resources(),
        assignments: f.num_assignments(),
        num_concepts,
        engine,
        model: Box::new(model.clone()),
        folksonomy: f.clone(),
        hard_model: model,
        queries,
    }
}

/// Interleaved measurement rounds per (preset, k). Round-to-round swings
/// on a shared machine (frequency scaling, sibling load) reach ±20% on
/// the sub-millisecond workloads, so the per-path best needs enough
/// draws to converge — nine rounds keep path-vs-path ratios stable to a
/// few percent where five still wobbled.
const ROUNDS: usize = 9;

/// Queries/s of several serving paths over one workload, measured in
/// *interleaved* rounds so slow drifts of a shared machine hit every
/// path equally: each path is warmed and calibrated to ~0.25 s windows,
/// then [`ROUNDS`] rounds run every path back to back; the per-path best
/// is reported (best-of rejects scheduling noise and can only understate
/// the hardware's capability).
type WorkloadPass<'a> = &'a mut dyn FnMut(&[Vec<TagId>]);

fn measure_paths(queries: &[Vec<TagId>], passes: &mut [WorkloadPass<'_>]) -> Vec<f64> {
    let mut reps = Vec::with_capacity(passes.len());
    for pass in passes.iter_mut() {
        pass(queries); // warm-up
        let t0 = Instant::now();
        pass(queries);
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        reps.push(((0.25 / once).ceil() as usize).clamp(1, 20_000));
    }
    let mut best = vec![f64::MIN; passes.len()];
    for _ in 0..ROUNDS {
        for (p, pass) in passes.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..reps[p] {
                pass(queries);
            }
            let qps = (reps[p] * queries.len()) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            best[p] = best[p].max(qps);
        }
    }
    best
}

/// Runs one single-threaded measurement per (preset, k, path) and writes
/// `BENCH_query.json` at the workspace root. Always runs (also under
/// `--test`), so CI keeps the report fresh.
fn emit_query_report(_c: &mut Criterion) {
    parallel::set_num_threads(1);
    let mut preset_jsons = Vec::new();
    for preset in [small_preset(), large_preset(), huge_preset()] {
        let model = &*preset.model;
        // Sharded scatter-gather (4 shards, sequential per-shard top-k
        // on one session + exact k-way merge) over the same engine — the
        // single-process cost of the serving topology the TCP server
        // deploys per shard-hosting node. Built once per preset (the
        // partition and its O(shards × resources) validation do not
        // depend on k).
        let sharded_set = ShardSet::from_parts(
            shard::partition_engines(&preset.engine, 4),
            preset.folksonomy.clone(),
            preset.hard_model.clone(),
        )
        .expect("bench shard set");
        let mut rows = Vec::new();
        for &k in &[10usize, 100] {
            let mut ms_engine = preset.engine.clone();
            ms_engine.set_strategy(PruningStrategy::MaxScore);
            let mut ms_session = ms_engine.session();
            let mut ms_out = Vec::new();
            let mut bm_engine = preset.engine.clone();
            bm_engine.set_strategy(PruningStrategy::BlockMax);
            let mut bm_session = bm_engine.session();
            let mut bm_out = Vec::new();
            let mut cp_engine = preset.engine.clone();
            cp_engine.set_strategy(PruningStrategy::CompressedBlockMax);
            let mut cp_session = cp_engine.session();
            let mut cp_out = Vec::new();
            let mut run_ref = |qs: &[Vec<TagId>]| {
                for q in qs {
                    black_box(preset.engine.search_tags_exact(model, q, k));
                }
            };
            let mut run_ms = |qs: &[Vec<TagId>]| {
                for q in qs {
                    ms_engine.search_tags_with(&mut ms_session, model, q, k, &mut ms_out);
                    black_box(ms_out.len());
                }
            };
            let mut run_bm = |qs: &[Vec<TagId>]| {
                for q in qs {
                    bm_engine.search_tags_with(&mut bm_session, model, q, k, &mut bm_out);
                    black_box(bm_out.len());
                }
            };
            let mut run_cp = |qs: &[Vec<TagId>]| {
                for q in qs {
                    cp_engine.search_tags_with(&mut cp_session, model, q, k, &mut cp_out);
                    black_box(cp_out.len());
                }
            };
            let mut sh_session = sharded_set.session();
            let mut sh_out = Vec::new();
            // The serving entry point: adaptive dispatch may answer from
            // the coalesced mirror (small corpora), the sequential
            // scatter, or the pooled fan-out — whatever the cost model
            // picks, exactly like the TCP server.
            let mut run_sharded = |qs: &[Vec<TagId>]| {
                for q in qs {
                    sharded_set.search_tags_auto(&mut sh_session, model, q, k, &mut sh_out);
                    black_box(sh_out.len());
                }
            };
            let qps = measure_paths(
                &preset.queries,
                &mut [
                    &mut run_ref,
                    &mut run_ms,
                    &mut run_bm,
                    &mut run_cp,
                    &mut run_sharded,
                ],
            );
            let (reference, maxscore, blockmax, compressed, sharded) =
                (qps[0], qps[1], qps[2], qps[3], qps[4]);
            println!(
                "{} k={k}: reference {:.0} q/s | maxscore {:.0} q/s | blockmax {:.0} q/s ({:.2}x maxscore) | compressed {:.0} q/s ({:.2}x blockmax) | sharded4 {:.0} q/s",
                preset.name, reference, maxscore, blockmax, blockmax / maxscore.max(1e-9),
                compressed, compressed / blockmax.max(1e-9), sharded
            );
            rows.push(format!(
                "      {{\"k\": {k}, \"reference_qps\": {:.0}, \"maxscore_qps\": {:.0}, \
                 \"blockmax_qps\": {:.0}, \"compressed_qps\": {:.0}, \"sharded4_qps\": {:.0}, \
                 \"blockmax_vs_maxscore\": {:.2}, \"blockmax_vs_reference\": {:.2}, \
                 \"compressed_vs_blockmax\": {:.2}, \"sharded4_vs_blockmax\": {:.2}}}",
                reference,
                maxscore,
                blockmax,
                compressed,
                sharded,
                blockmax / maxscore.max(1e-9),
                blockmax / reference.max(1e-9),
                compressed / blockmax.max(1e-9),
                sharded / blockmax.max(1e-9),
            ));
        }
        // Multi-threaded rows: the batched single-engine path and the
        // sharded batch path through the persistent executor at pool
        // sizes {1, 4, 8}, k = 10, plus the fraction of dispatch
        // decisions the adaptive cost model kept on the caller thread
        // during the measurement (from the executor's own counters).
        let mut threaded_rows = Vec::new();
        for &threads in &[1usize, 4, 8] {
            parallel::set_num_threads(threads);
            let s0 = exec::stats();
            let mut run_batch = |qs: &[Vec<TagId>]| {
                black_box(preset.engine.search_batch(model, qs, 10));
            };
            let mut run_sharded_batch = |qs: &[Vec<TagId>]| {
                black_box(sharded_set.search_batch(model, qs, 10));
            };
            let qps = measure_paths(
                &preset.queries,
                &mut [&mut run_batch, &mut run_sharded_batch],
            );
            let s1 = exec::stats();
            let (inline, fanout) = (s1.inline - s0.inline, s1.fanout - s0.fanout);
            let decisions = inline + fanout;
            let inline_ratio = if decisions == 0 {
                1.0
            } else {
                inline as f64 / decisions as f64
            };
            println!(
                "{} threads={threads}: batch {:.0} q/s | sharded4 batch {:.0} q/s | inline ratio {:.2}",
                preset.name, qps[0], qps[1], inline_ratio
            );
            threaded_rows.push(format!(
                "      {{\"threads\": {threads}, \"batch_qps\": {:.0}, \
                 \"sharded4_batch_qps\": {:.0}, \"inline_dispatch_ratio\": {inline_ratio:.2}}}",
                qps[0], qps[1],
            ));
        }
        parallel::set_num_threads(1);

        // The memory story: hot footprint per posting (the compressed
        // mirror vs the exact SoA arrays), on-disk index artifact sizes,
        // and the process RSS right after serving this preset (VmHWM is
        // the kernel's monotonic high-water mark — "peak so far").
        let ix = preset.engine.index();
        let n_postings = ix.num_postings();
        let bpp_compressed = ix.compressed_hot_bytes() as f64 / n_postings.max(1) as f64;
        let bpp_uncompressed = ix.uncompressed_hot_bytes() as f64 / n_postings.max(1) as f64;
        let artifact_compressed = persist::index_artifact_bytes(ix, true);
        let artifact_uncompressed = persist::index_artifact_bytes(ix, false);
        let fmt_rss = |v: Option<u64>| v.map_or("null".to_string(), |b| b.to_string());
        let rss = fmt_rss(cubelsi_eval::memory::current_rss_bytes());
        let peak_rss = fmt_rss(cubelsi_eval::memory::peak_rss_bytes());
        println!(
            "{}: {n_postings} postings | hot {bpp_compressed:.2} B/posting compressed vs \
             {bpp_uncompressed:.2} uncompressed | artifact {artifact_compressed} B (+mirror) vs \
             {artifact_uncompressed} B | rss {rss} peak {peak_rss}",
            preset.name
        );
        preset_jsons.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"users\": {}, \"tags\": {}, \"resources\": {}, \
             \"assignments\": {}, \"num_concepts\": {},\n      \"queries\": {},\n      \
             \"postings\": {n_postings},\n      \
             \"bytes_per_posting_compressed\": {bpp_compressed:.2}, \
             \"bytes_per_posting_uncompressed\": {bpp_uncompressed:.2},\n      \
             \"index_artifact_bytes_compressed\": {artifact_compressed}, \
             \"index_artifact_bytes_uncompressed\": {artifact_uncompressed},\n      \
             \"rss_bytes\": {rss}, \"peak_rss_bytes\": {peak_rss},\n      \"results\": [\n{}\n      ],\n      \
             \"threaded\": [\n{}\n      ]\n    }}",
            preset.name,
            preset.users,
            preset.tags,
            preset.resources,
            preset.assignments,
            preset.num_concepts,
            preset.queries.len(),
            rows.join(",\n"),
            threaded_rows.join(",\n"),
        ));
    }
    parallel::set_num_threads(0);

    // Machine parallelism stamps the report: the `threaded` rows only
    // show real scaling when the hardware has the cores to back the
    // pool — on a single-core box they measure pure handoff overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"threads\": 1,\n  \"cores\": {cores},\n  \"paths\": \
         [\"reference_exhaustive\", \"maxscore\", \"blockmax\", \"compressed\", \"sharded4\"],\n  \
         \"threaded_paths\": [\"batch\", \"sharded4_batch\"],\n  \"presets\": [\n{}\n  ]\n}}\n",
        preset_jsons.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(path, &json).expect("write BENCH_query.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_query_latency,
    bench_query_throughput,
    emit_query_report
);
criterion_main!(benches);
