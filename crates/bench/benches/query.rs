//! Online query benchmarks.
//!
//! * `query_latency` — per-query latency of every ranking method (the
//!   microscopic view of Table VI: CubeLSI's cosine matching vs FolkRank's
//!   power iteration).
//! * `query_throughput` — queries/sec of the CubeLSI serving paths on the
//!   300 users × 250 resources × 15k assignments datagen preset: the
//!   exhaustive full-sort reference vs the pruned heap engine (reused
//!   session, zero steady-state allocation) vs the parallel batched API,
//!   at k ∈ {10, 100} over a 128-query evaluation workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cubelsi_baselines::{
    BowRanker, CubeSim, CubeSimMode, FolkRank, FolkRankConfig, FreqRanker, LsiConfig, LsiRanker,
    Ranker,
};
use cubelsi_core::{CubeLsi, CubeLsiConfig};
use cubelsi_datagen::{generate, GeneratedDataset, GeneratorConfig};
use cubelsi_eval::{generate_workload, WorkloadConfig};
use cubelsi_folksonomy::TagId;
use std::hint::black_box;

fn bench_query_latency(c: &mut Criterion) {
    let ds = generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 12,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    });
    let f = &ds.folksonomy;

    let cubelsi = CubeLsi::build(
        f,
        &CubeLsiConfig {
            core_dims: Some((16, 16, 16)),
            num_concepts: Some(12),
            max_als_iters: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let folkrank = FolkRank::build(f, &FolkRankConfig::default());
    let freq = FreqRanker::build(f);
    let bow = BowRanker::build(f);
    let lsi = LsiRanker::build(
        f,
        &LsiConfig {
            rank: Some(16),
            num_concepts: Some(12),
            ..Default::default()
        },
    )
    .unwrap();
    let cubesim = CubeSim::build(
        f,
        &cubelsi_baselines::cubesim::CubeSimConfig {
            mode: CubeSimMode::SparseOptimized,
            num_concepts: Some(12),
            ..Default::default()
        },
    )
    .unwrap();

    // A 3-tag query over frequent tags.
    let query: Vec<TagId> = (0..3).map(TagId::from_index).collect();

    let cubelsi_ranker = cubelsi_baselines::CubeLsiRanker(cubelsi);
    let mut group = c.benchmark_group("query_latency");
    let rankers: Vec<(&str, &dyn Ranker)> = vec![
        ("CubeLSI", &cubelsi_ranker),
        ("FolkRank", &folkrank),
        ("Freq", &freq),
        ("BOW", &bow),
        ("LSI", &lsi),
        ("CubeSim", &cubesim),
    ];
    for (name, ranker) in rankers {
        group.bench_function(name, |bencher| {
            bencher.iter(|| black_box(ranker.search_ids(&query, 20)));
        });
    }
    group.finish();
}

/// The ISSUE-1 preset: 300 users × 250 resources × 15k assignments.
fn throughput_dataset() -> GeneratedDataset {
    generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 15,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    })
}

fn bench_query_throughput(c: &mut Criterion) {
    let ds = throughput_dataset();
    let engine = CubeLsi::build(
        &ds.folksonomy,
        &CubeLsiConfig {
            core_dims: Some((16, 16, 16)),
            num_concepts: Some(15),
            max_als_iters: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let queries: Vec<Vec<TagId>> = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 128,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.tags)
    .collect();

    let mut group = c.benchmark_group("query_throughput");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.sample_size(20);

    for &k in &[10usize, 100] {
        // Seed path: exhaustive accumulation + full sort, per query.
        group.bench_function(format!("exact_fullsort_k{k}"), |bencher| {
            bencher.iter(|| {
                for q in &queries {
                    black_box(engine.engine().search_tags_exact(engine.concepts(), q, k));
                }
            });
        });
        // New path: MaxScore pruning + bounded heap on a reused session
        // (the steady-state zero-allocation serving loop).
        group.bench_function(format!("pruned_k{k}"), |bencher| {
            let mut session = engine.session();
            let mut out = Vec::new();
            bencher.iter(|| {
                for q in &queries {
                    engine.search_ids_with(&mut session, q, k, &mut out);
                    black_box(out.len());
                }
            });
        });
        // Batched: the same pruned path fanned across the worker pool.
        group.bench_function(format!("batched_k{k}"), |bencher| {
            bencher.iter(|| black_box(engine.search_batch(&queries, k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_latency, bench_query_throughput);
criterion_main!(benches);
