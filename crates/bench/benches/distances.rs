//! Benchmarks of the paper's central efficiency claim: pairwise tag
//! distances via the Theorem-1/2 shortcut versus the brute-force dense
//! slice computation (Eq. 17 / CubeSim's costing).

use criterion::{criterion_group, criterion_main, Criterion};
use cubelsi_baselines::{CubeSim, CubeSimMode};
use cubelsi_core::{
    brute_force_distances, build_tensor, pairwise_distances_from_embedding, tag_embedding,
    SigmaSource,
};
use cubelsi_datagen::{generate, GeneratorConfig};
use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_tensor::{tucker_als, SparseTensor3, TuckerConfig, TuckerDecomposition};
use std::hint::black_box;

fn corpus(users: usize, resources: usize, assignments: usize) -> SparseTensor3 {
    let ds = generate(&GeneratorConfig {
        users,
        resources,
        concepts: 10,
        assignments,
        seed: 11,
        ..Default::default()
    });
    build_tensor(&ds.folksonomy).unwrap()
}

fn decompose(tensor: &SparseTensor3, core: usize) -> TuckerDecomposition {
    let cfg = TuckerConfig {
        core_dims: (core, core, core),
        max_iters: 4,
        fit_tol: 1e-4,
        subspace: SubspaceOptions::default(),
        fused_gram: true,
    };
    tucker_als(tensor, &cfg).unwrap()
}

/// Theorem-1 fast path (embedding + all-pairs Euclidean).
fn bench_theorem1_fast_path(c: &mut Criterion) {
    let tensor = corpus(200, 150, 10_000);
    let decomp = decompose(&tensor, 12);
    let mut group = c.benchmark_group("tag_distances");
    group.sample_size(20);
    group.bench_function("theorem1_lambda2", |bencher| {
        bencher.iter(|| {
            let z = tag_embedding(&decomp, SigmaSource::Lambda2).unwrap();
            black_box(pairwise_distances_from_embedding(&z))
        });
    });
    group.bench_function("theorem1_core_gram", |bencher| {
        bencher.iter(|| {
            let z = tag_embedding(&decomp, SigmaSource::CoreGram).unwrap();
            black_box(pairwise_distances_from_embedding(&z))
        });
    });
    group.finish();
}

/// The comparison the paper's Table V dramatizes: shortcut vs brute force.
/// Brute force materializes F̂, so the corpus here is deliberately small.
fn bench_shortcut_vs_brute_force(c: &mut Criterion) {
    let tensor = corpus(60, 50, 2_000);
    let decomp = decompose(&tensor, 8);
    let mut group = c.benchmark_group("theorem1_vs_bruteforce");
    group.sample_size(10);
    group.bench_function("shortcut", |bencher| {
        bencher.iter(|| {
            let z = tag_embedding(&decomp, SigmaSource::Lambda2).unwrap();
            black_box(pairwise_distances_from_embedding(&z))
        });
    });
    group.bench_function("brute_force_fhat", |bencher| {
        bencher.iter(|| black_box(brute_force_distances(&decomp).unwrap()));
    });
    group.finish();
}

/// CubeSim's two modes on raw tensors (sparse extension vs faithful dense).
fn bench_cubesim_modes(c: &mut Criterion) {
    let tensor = corpus(120, 100, 6_000);
    let mut group = c.benchmark_group("cubesim_distances");
    group.sample_size(10);
    group.bench_function("sparse_optimized", |bencher| {
        bencher.iter(|| {
            black_box(CubeSim::distances_with_report(
                &tensor,
                CubeSimMode::SparseOptimized,
            ))
        });
    });
    group.bench_function("faithful_dense", |bencher| {
        bencher.iter(|| {
            black_box(CubeSim::distances_with_report(
                &tensor,
                CubeSimMode::FaithfulDense { budget: None },
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_theorem1_fast_path,
    bench_shortcut_vs_brute_force,
    bench_cubesim_modes
);
criterion_main!(benches);
