//! Per-phase offline build benchmark on the 300×250×15k preset — the
//! measurement behind the build-performance overhaul.
//!
//! Two configurations are timed end-to-end through `CubeLsi::build`:
//!
//! * **optimized** — the default kernels: bounds-pruned k-means, fused
//!   single-pass Gram applies, the adaptive spectral eigensolver, and the
//!   scratch-reusing TTM/HOOI sweeps;
//! * **reference** — `CubeLsiConfig::with_reference_kernels()`, the
//!   pre-overhaul paths (naive Lloyd's, materialized Gram products, the
//!   exhaustive spectral solver).
//!
//! Besides the criterion numbers, a machine-readable per-phase report is
//! written to `BENCH_build.json` at the workspace root (wall time per
//! offline phase, corpus dimensions, tensor nnz, thread count, speedup), so
//! the perf trajectory of this engine is tracked in-repo.

use criterion::{criterion_group, criterion_main, Criterion};
use cubelsi_core::{build_tensor, CubeLsi, CubeLsiConfig, PhaseTimings};
use cubelsi_datagen::{generate, GeneratedDataset, GeneratorConfig};
use cubelsi_linalg::kmeans::{kmeans, KMeansAlgorithm, KMeansConfig};
use cubelsi_linalg::{parallel, Matrix};
use std::hint::black_box;
use std::time::Instant;

/// The 300 users × 250 resources × 15k assignments preset shared with the
/// tucker/query benches.
fn corpus() -> GeneratedDataset {
    generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 12,
        assignments: 15_000,
        seed: 31,
        ..Default::default()
    })
}

/// The CLI's default build configuration for this corpus: ratio 50 clamped
/// so every mode keeps at least 8 core dimensions, concepts from the
/// 95 %-variance rule.
fn build_config(ds: &GeneratedDataset) -> CubeLsiConfig {
    let min_j = 8usize;
    let eff = |dim: usize| 50.0f64.min((dim as f64 / min_j as f64).max(1.25));
    CubeLsiConfig {
        reduction_ratios: (
            eff(ds.folksonomy.num_users()),
            eff(ds.folksonomy.num_tags()),
            eff(ds.folksonomy.num_resources()),
        ),
        ..Default::default()
    }
}

fn bench_build_phases(c: &mut Criterion) {
    let ds = corpus();
    let optimized = build_config(&ds);
    let reference = optimized.clone().with_reference_kernels();
    let mut group = c.benchmark_group("build_phases");
    group.sample_size(10);
    group.bench_function("optimized", |bencher| {
        bencher.iter(|| black_box(CubeLsi::build(&ds.folksonomy, &optimized).unwrap()));
    });
    group.bench_function("reference_kernels", |bencher| {
        bencher.iter(|| black_box(CubeLsi::build(&ds.folksonomy, &reference).unwrap()));
    });
    group.finish();
}

/// The k-means kernel in isolation, at a scale where the vocabulary is an
/// order of magnitude past the preset (the folksonomy-scale case the
/// pruning is for).
fn bench_kmeans_algorithms(c: &mut Criterion) {
    let n = 2_000;
    let d = 24;
    let k = 48;
    let points = Matrix::from_fn(n, d, |i, j| {
        let center = (i * k / n) as f64;
        center + ((i * 31 + j * 17) % 100) as f64 / 400.0
    });
    let mut group = c.benchmark_group("kmeans_exact");
    group.sample_size(10);
    for (name, algorithm) in [
        ("bounds_pruned", KMeansAlgorithm::BoundsPruned),
        ("naive_lloyd", KMeansAlgorithm::NaiveLloyd),
    ] {
        let cfg = KMeansConfig {
            k,
            n_init: 2,
            algorithm,
            ..Default::default()
        };
        group.bench_function(name, |bencher| {
            bencher.iter(|| black_box(kmeans(&points, &cfg).unwrap()));
        });
    }
    group.finish();
}

/// Runs one single-threaded build per configuration and writes the
/// per-phase wall times to `BENCH_build.json` at the workspace root. Always
/// runs (also under `--test`), so CI keeps the report fresh.
fn emit_phase_report(_c: &mut Criterion) {
    let ds = corpus();
    let tensor = build_tensor(&ds.folksonomy).expect("tensor build");
    let optimized_cfg = build_config(&ds);
    let reference_cfg = optimized_cfg.clone().with_reference_kernels();

    parallel::set_num_threads(1);
    // One warm-up so neither side pays first-touch costs, then best of
    // three per side — single runs on shared machines are too noisy to
    // commit as the trajectory record.
    let _ = CubeLsi::build(&ds.folksonomy, &optimized_cfg).expect("warm-up build");
    let (opt_total, opt) = best_of(3, &ds, &optimized_cfg);
    let (ref_total, reference) = best_of(3, &ds, &reference_cfg);
    parallel::set_num_threads(0);

    let speedup = ref_total / opt_total.max(1e-9);
    let dims = tensor.dims();
    let json = format!(
        "{{\n  \"bench\": \"build_phases\",\n  \"preset\": {{\"users\": {}, \"tags\": {}, \"resources\": {}, \
         \"assignments\": {}, \"tensor_dims\": [{}, {}, {}], \"tensor_nnz\": {}}},\n  \"threads\": 1,\n  \
         \"reference\": {},\n  \"optimized\": {},\n  \"speedup\": {:.2}\n}}\n",
        ds.folksonomy.num_users(),
        ds.folksonomy.num_tags(),
        ds.folksonomy.num_resources(),
        ds.folksonomy.num_assignments(),
        dims.0,
        dims.1,
        dims.2,
        tensor.nnz(),
        phases_json(&reference, ref_total),
        phases_json(&opt, opt_total),
        speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_build.json");
    std::fs::write(path, &json).expect("write BENCH_build.json");
    println!("build_phases report (single core): reference {ref_total:.1} ms -> optimized {opt_total:.1} ms ({speedup:.2}x)");
    println!("wrote {path}");
}

fn best_of(runs: usize, ds: &GeneratedDataset, cfg: &CubeLsiConfig) -> (f64, PhaseTimings) {
    let mut best: Option<(f64, PhaseTimings)> = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let model = CubeLsi::build(&ds.folksonomy, cfg).expect("build");
        let total = t0.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(b, _)| total < *b) {
            best = Some((total, *model.timings()));
        }
    }
    best.expect("at least one run")
}

fn phases_json(t: &PhaseTimings, total_ms: f64) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    format!(
        "{{\"tensor_build_ms\": {:.3}, \"tucker_ms\": {:.3}, \"distances_ms\": {:.3}, \
         \"clustering_ms\": {:.3}, \"indexing_ms\": {:.3}, \"total_ms\": {:.3}}}",
        ms(t.tensor_build),
        ms(t.tucker),
        ms(t.distances),
        ms(t.clustering),
        ms(t.indexing),
        total_ms,
    )
}

criterion_group!(
    benches,
    bench_build_phases,
    bench_kmeans_algorithms,
    emit_phase_report
);
criterion_main!(benches);
