//! Benchmarks of concept distillation: spectral clustering (§V) and its
//! k-means finale, across tag-vocabulary sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubelsi_linalg::kmeans::{kmeans, KMeansConfig};
use cubelsi_linalg::spectral::{spectral_clustering, KSelection, SpectralConfig};
use cubelsi_linalg::Matrix;
use std::hint::black_box;

/// A block-structured distance matrix: `k` groups of equal size.
fn block_distances(n: usize, k: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if (i * k) / n == (j * k) / n {
            0.2 + ((i * 7 + j * 3) % 10) as f64 * 0.01
        } else {
            3.0 + ((i + j) % 10) as f64 * 0.05
        }
    })
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_clustering");
    group.sample_size(10);
    for n in [100usize, 250, 500] {
        let d = block_distances(n, 8);
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::Fixed(8),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |bencher, d| {
            bencher.iter(|| black_box(spectral_clustering(d, &cfg).unwrap()));
        });
    }
    group.finish();
}

fn bench_variance_rule(c: &mut Criterion) {
    // The 95 %-variance k-selection costs extra eigenpairs; measure it.
    let d = block_distances(250, 8);
    let mut group = c.benchmark_group("spectral_k_selection");
    group.sample_size(10);
    group.bench_function("fixed_k", |bencher| {
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::Fixed(8),
            ..Default::default()
        };
        bencher.iter(|| black_box(spectral_clustering(&d, &cfg).unwrap()));
    });
    group.bench_function("variance_95", |bencher| {
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::VarianceCovered {
                fraction: 0.95,
                max_k: 32,
            },
            ..Default::default()
        };
        bencher.iter(|| black_box(spectral_clustering(&d, &cfg).unwrap()));
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for (n, d, k) in [(500usize, 8usize, 8usize), (2_000, 16, 16)] {
        let points = Matrix::from_fn(n, d, |i, j| {
            let center = (i * k / n) as f64;
            center + ((i * 31 + j * 17) % 100) as f64 / 500.0
        });
        let cfg = KMeansConfig {
            k,
            n_init: 2,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}pts_{d}d_{k}k")),
            &points,
            |bencher, points| {
                bencher.iter(|| black_box(kmeans(points, &cfg).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spectral, bench_variance_rule, bench_kmeans);
criterion_main!(benches);
