//! Micro-benchmarks for the linear-algebra substrate: the kernels every
//! higher-level stage (Tucker, LSI, spectral clustering) is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_linalg::svd::truncated_svd;
use cubelsi_linalg::{householder_qr, jacobi_eigen, sym_eigs_topk, CsrMatrix, DenseSymOp, Matrix};
use std::hint::black_box;

fn dense_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| (((i * 31 + j * 17) % 13) as f64 - 6.0) / 13.0)
}

fn spd_matrix(n: usize) -> Matrix {
    let b = dense_matrix(n);
    b.gram()
}

fn sparse_matrix(rows: usize, cols: usize, nnz: usize) -> CsrMatrix {
    let triples: Vec<(usize, usize, f64)> = (0..nnz)
        .map(|k| ((k * 7919) % rows, (k * 104729) % cols, 1.0 + (k % 5) as f64))
        .collect();
    CsrMatrix::from_triples(rows, cols, &triples).unwrap()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = dense_matrix(n);
        let b = dense_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("householder_qr");
    for (m, n) in [(256usize, 16usize), (512, 32)] {
        let a = Matrix::from_fn(m, n, |i, j| ((i * 13 + j * 7) % 17) as f64 / 17.0 - 0.5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &a,
            |bencher, a| {
                bencher.iter(|| black_box(householder_qr(a).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_jacobi_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_eigen");
    for n in [16usize, 32, 64] {
        let a = spd_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |bencher, a| {
            bencher.iter(|| black_box(jacobi_eigen(a, 1e-10).unwrap()));
        });
    }
    group.finish();
}

fn bench_subspace_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigs_topk");
    for n in [128usize, 256] {
        let a = spd_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |bencher, a| {
            let op = DenseSymOp::new(a);
            bencher.iter(|| black_box(sym_eigs_topk(&op, 8, &SubspaceOptions::default()).unwrap()));
        });
    }
    group.finish();
}

fn bench_truncated_svd_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("truncated_svd_sparse");
    // Shapes like the LSI baseline's tag×resource matrices.
    for (rows, cols, nnz) in [(500usize, 400usize, 5_000usize), (1_000, 800, 20_000)] {
        let m = sparse_matrix(rows, cols, nnz);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}nnz{nnz}")),
            &m,
            |bencher, m| {
                bencher
                    .iter(|| black_box(truncated_svd(m, 16, &SubspaceOptions::default()).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_csr_matvec(c: &mut Criterion) {
    let m = sparse_matrix(2_000, 2_000, 40_000);
    let x = vec![1.0; 2_000];
    c.bench_function("csr_matvec_2000x2000_40k", |bencher| {
        bencher.iter(|| black_box(m.matvec(&x).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_qr,
    bench_jacobi_eigen,
    bench_subspace_iteration,
    bench_truncated_svd_sparse,
    bench_csr_matvec
);
criterion_main!(benches);
