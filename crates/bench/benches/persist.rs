//! Artifact persistence benchmarks: the economics of the build/serve
//! split.
//!
//! * `persist/full_rebuild` — the offline pipeline a process without an
//!   artifact must run before it can answer its first query;
//! * `persist/save` — serializing a built engine to the `.cubelsi` bytes;
//! * `persist/load` — deserializing those bytes back into a serving-ready
//!   engine. This is the startup cost of `cubelsi-search query`/`serve`,
//!   and the number that must stay orders of magnitude below
//!   `full_rebuild` for the artifact split to pay off.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cubelsi_core::{persist, CubeLsi, CubeLsiConfig};
use cubelsi_datagen::{generate, GeneratorConfig};
use std::hint::black_box;

fn bench_persist(c: &mut Criterion) {
    let ds = generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 12,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    });
    let f = &ds.folksonomy;
    let config = CubeLsiConfig {
        core_dims: Some((16, 16, 16)),
        num_concepts: Some(12),
        max_als_iters: 4,
        ..Default::default()
    };
    let model = CubeLsi::build(f, &config).unwrap();
    let bytes = persist::save_to_vec(&model, f);
    eprintln!(
        "artifact: {} bytes for |U|={} |T|={} |R|={} |Y|={}",
        bytes.len(),
        f.num_users(),
        f.num_tags(),
        f.num_resources(),
        f.num_assignments()
    );

    let mut group = c.benchmark_group("persist");
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    group.bench_function("full_rebuild", |b| {
        b.iter(|| black_box(CubeLsi::build(black_box(f), &config).unwrap()))
    });
    group.bench_function("save", |b| {
        b.iter(|| black_box(persist::save_to_vec(black_box(&model), black_box(f))))
    });
    group.bench_function("load", |b| {
        b.iter(|| black_box(persist::load_from_bytes(black_box(&bytes)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
