//! Artifact persistence benchmarks: the economics of the build/serve
//! split.
//!
//! * `persist/full_rebuild` — the offline pipeline a process without an
//!   artifact must run before it can answer its first query;
//! * `persist/save` — serializing a built engine to the `.cubelsi` bytes;
//! * `persist/load` — deserializing those bytes back into a serving-ready
//!   engine (owned arrays, the portable default). This is the startup
//!   cost of `cubelsi-search query`/`serve`, and the number that must
//!   stay orders of magnitude below `full_rebuild` for the artifact
//!   split to pay off;
//! * `persist/load_zero_copy` — restoring the engine with the index
//!   arrays borrowed straight out of the aligned file buffer (the
//!   `--zero-copy` serving path): validation still runs, the per-posting
//!   copy does not.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cubelsi_core::{persist, AlignedBytes, CubeLsi, CubeLsiConfig};
use cubelsi_datagen::{generate, GeneratorConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_persist(c: &mut Criterion) {
    let ds = generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 12,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    });
    let f = &ds.folksonomy;
    let config = CubeLsiConfig {
        core_dims: Some((16, 16, 16)),
        num_concepts: Some(12),
        max_als_iters: 4,
        ..Default::default()
    };
    let model = CubeLsi::build(f, &config).unwrap();
    let bytes = persist::save_to_vec(&model, f);
    eprintln!(
        "artifact: {} bytes for |U|={} |T|={} |R|={} |Y|={}",
        bytes.len(),
        f.num_users(),
        f.num_tags(),
        f.num_resources(),
        f.num_assignments()
    );

    let mut group = c.benchmark_group("persist");
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    group.bench_function("full_rebuild", |b| {
        b.iter(|| black_box(CubeLsi::build(black_box(f), &config).unwrap()))
    });
    group.bench_function("save", |b| {
        b.iter(|| black_box(persist::save_to_vec(black_box(&model), black_box(f))))
    });
    group.bench_function("load", |b| {
        b.iter(|| black_box(persist::load_from_bytes(black_box(&bytes)).unwrap()))
    });
    let aligned = Arc::new(AlignedBytes::from_bytes(&bytes));
    group.bench_function("load_zero_copy", |b| {
        b.iter(|| black_box(persist::load_zero_copy(black_box(aligned.clone())).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
