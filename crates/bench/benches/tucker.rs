//! Benchmarks of the Tucker/HOOI decomposition — the dominant cost of
//! CubeLSI's offline phase (Table V's left column) — plus its TTM kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubelsi_core::build_tensor;
use cubelsi_datagen::{generate, GeneratorConfig};
use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_linalg::Matrix;
use cubelsi_tensor::{tucker_als, SparseTensor3, TuckerConfig};
use std::hint::black_box;

fn corpus_tensor(users: usize, resources: usize, assignments: usize) -> SparseTensor3 {
    let ds = generate(&GeneratorConfig {
        users,
        resources,
        concepts: 12,
        assignments,
        seed: 5,
        ..Default::default()
    });
    build_tensor(&ds.folksonomy).unwrap()
}

fn tucker_config(core: usize) -> TuckerConfig {
    TuckerConfig {
        core_dims: (core, core, core),
        max_iters: 4,
        fit_tol: 1e-4,
        subspace: SubspaceOptions::default(),
        fused_gram: true,
    }
}

fn bench_tucker_als(c: &mut Criterion) {
    let mut group = c.benchmark_group("tucker_als");
    group.sample_size(10);
    for (users, resources, assignments) in [(150usize, 120usize, 6_000usize), (300, 250, 15_000)] {
        let tensor = corpus_tensor(users, resources, assignments);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{users}u_{resources}r_{assignments}y")),
            &tensor,
            |bencher, tensor| {
                bencher.iter(|| black_box(tucker_als(tensor, &tucker_config(12)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_core_size_sweep(c: &mut Criterion) {
    // Figure 5 in miniature: decomposition cost versus core size.
    let tensor = corpus_tensor(200, 150, 10_000);
    let mut group = c.benchmark_group("tucker_core_size");
    group.sample_size(10);
    for core in [4usize, 8, 16, 24] {
        group.bench_with_input(
            BenchmarkId::from_parameter(core),
            &core,
            |bencher, &core| {
                bencher.iter(|| black_box(tucker_als(&tensor, &tucker_config(core)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_ttm_kernel(c: &mut Criterion) {
    let tensor = corpus_tensor(300, 250, 15_000);
    let dims = tensor.dims();
    let j = 16usize;
    let y1 = Matrix::from_fn(dims.0, j, |i, k| ((i + k) % 7) as f64 / 7.0);
    let y3 = Matrix::from_fn(dims.2, j, |i, k| ((i * k + 1) % 5) as f64 / 5.0);
    c.bench_function("ttm_except_unfolded_mode2", |bencher| {
        bencher.iter(|| black_box(tensor.ttm_except_unfolded(2, &y1, &y3).unwrap()));
    });
}

fn bench_hosvd_unfold(c: &mut Criterion) {
    let tensor = corpus_tensor(300, 250, 15_000);
    c.bench_function("unfold_csr_mode2", |bencher| {
        bencher.iter(|| black_box(tensor.unfold_csr(2)));
    });
}

criterion_group!(
    benches,
    bench_tucker_als,
    bench_core_size_sweep,
    bench_ttm_kernel,
    bench_hosvd_unfold
);
criterion_main!(benches);
