//! End-to-end offline pipeline benchmarks and design ablations flagged in
//! DESIGN.md: Σ source (Theorem 1 vs Theorem 2), ALS iteration budget, and
//! HOSVD-only versus full HOOI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubelsi_core::{CubeLsi, CubeLsiConfig, SigmaSource};
use cubelsi_datagen::{generate, GeneratedDataset, GeneratorConfig};
use std::hint::black_box;

fn corpus() -> GeneratedDataset {
    generate(&GeneratorConfig {
        users: 250,
        resources: 200,
        concepts: 12,
        assignments: 12_000,
        seed: 31,
        ..Default::default()
    })
}

fn base_config() -> CubeLsiConfig {
    CubeLsiConfig {
        core_dims: Some((16, 16, 16)),
        num_concepts: Some(12),
        max_als_iters: 4,
        ..Default::default()
    }
}

fn bench_offline_build(c: &mut Criterion) {
    let ds = corpus();
    let mut group = c.benchmark_group("offline_build");
    group.sample_size(10);
    group.bench_function("full_pipeline", |bencher| {
        bencher.iter(|| black_box(CubeLsi::build(&ds.folksonomy, &base_config()).unwrap()));
    });
    group.finish();
}

/// Ablation: Theorem-2 diagonal Σ versus Theorem-1 core-Gram Σ.
fn bench_sigma_source_ablation(c: &mut Criterion) {
    let ds = corpus();
    let mut group = c.benchmark_group("ablation_sigma_source");
    group.sample_size(10);
    for (name, source) in [
        ("lambda2", SigmaSource::Lambda2),
        ("core_gram", SigmaSource::CoreGram),
    ] {
        let cfg = CubeLsiConfig {
            sigma_source: source,
            ..base_config()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |bencher, cfg| {
            bencher.iter(|| black_box(CubeLsi::build(&ds.folksonomy, cfg).unwrap()));
        });
    }
    group.finish();
}

/// Ablation: ALS iteration budget (0 extra iterations ≈ HOSVD-only).
fn bench_als_iterations_ablation(c: &mut Criterion) {
    let ds = corpus();
    let mut group = c.benchmark_group("ablation_als_iters");
    group.sample_size(10);
    for iters in [1usize, 4, 8] {
        let cfg = CubeLsiConfig {
            max_als_iters: iters,
            als_fit_tol: 0.0, // force the full budget
            ..base_config()
        };
        group.bench_with_input(BenchmarkId::from_parameter(iters), &cfg, |bencher, cfg| {
            bencher.iter(|| black_box(CubeLsi::build(&ds.folksonomy, cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_build,
    bench_sigma_source_ablation,
    bench_als_iterations_ablation
);
criterion_main!(benches);
