//! Runs every table/figure experiment in sequence (the full §VI suite).
use cubelsi_bench::*;
use std::time::Duration;

fn main() {
    let opts = RunOptions::from_args();
    eprintln!(
        "# CubeLSI experiment suite (scale {}, seed {})",
        opts.scale, opts.seed
    );
    let contexts = prepare_contexts(opts);

    println!("{}", table1(&contexts[0], opts.seed).to_text());
    println!("{}", table2(opts).to_text());
    println!("{}", table3(&contexts[1], opts.seed).to_text());
    println!("{}", table4(&contexts[0], opts.seed).to_text());
    println!(
        "{}",
        table5(&contexts, opts.seed, Duration::from_secs(60)).to_text()
    );
    println!("{}", table6(&contexts, opts.seed).to_text());
    println!("{}", table7(&contexts).to_text());
    for ctx in &contexts {
        println!("{}", figure4_panel(ctx, opts.seed).to_text());
    }
    println!("{}", figure5(&contexts, opts.seed).to_text());
}
