//! Regenerates Table I (tag-pair semantic relations) of the CubeLSI paper.
use cubelsi_bench::{prepare_contexts, table1, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    // The paper runs this study on the Delicious dataset.
    let ctx = &contexts[0];
    println!("{}", table1(ctx, opts.seed).to_text());
}
