//! Regenerates Table III (JCN_avg / Rank_avg tag-distance accuracy).
use cubelsi_bench::{prepare_contexts, table3, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    // The paper runs this study on the Bibsonomy dataset.
    let ctx = &contexts[1];
    println!("{}", table3(ctx, opts.seed).to_text());
}
