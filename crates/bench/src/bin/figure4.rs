//! Regenerates Figure 4 (NDCG@N of the six ranking methods, per dataset).
use cubelsi_bench::{figure4_panel, prepare_contexts, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    for ctx in &contexts {
        println!("{}", figure4_panel(ctx, opts.seed).to_text());
    }
}
