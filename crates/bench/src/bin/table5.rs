//! Regenerates Table V (pre-processing times, CubeLSI vs CubeSim).
use cubelsi_bench::{prepare_contexts, table5, RunOptions};
use std::time::Duration;

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    // Wall-clock budget standing in for the paper's 100-hour cutoff,
    // scaled to the bench-sized corpora.
    let budget = Duration::from_secs(60);
    println!("{}", table5(&contexts, opts.seed, budget).to_text());
}
