//! Regenerates Table VII (memory requirements of F̂ vs Σ+Y⁽²⁾).
use cubelsi_bench::{prepare_contexts, table7, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    println!("{}", table7(&contexts).to_text());
}
