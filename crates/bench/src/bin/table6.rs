//! Regenerates Table VI (query-processing times, CubeLSI vs FolkRank).
use cubelsi_bench::{prepare_contexts, table6, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    println!("{}", table6(&contexts, opts.seed).to_text());
}
