//! Regenerates Table IV (sample tag clusters by correlation type).
use cubelsi_bench::{prepare_contexts, table4, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    // The paper shows clusters from the Delicious dataset.
    let ctx = &contexts[0];
    println!("{}", table4(ctx, opts.seed).to_text());
}
