//! Regenerates Figure 5 (pre-processing time vs reduction ratios).
use cubelsi_bench::{figure5, prepare_contexts, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let contexts = prepare_contexts(opts);
    println!("{}", figure5(&contexts, opts.seed).to_text());
}
