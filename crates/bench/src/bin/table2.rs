//! Regenerates Table II (raw vs cleaned dataset statistics).
use cubelsi_bench::{table2, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    println!("{}", table2(opts).to_text());
}
