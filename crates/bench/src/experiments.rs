//! Shared implementation of every table/figure experiment.

use std::time::{Duration, Instant};

use cubelsi_baselines::{
    cubesim::CubeSimConfig, BowRanker, CubeSim, CubeSimMode, FolkRank, FolkRankConfig, FreqRanker,
    LsiConfig, LsiRanker, Ranker,
};
use cubelsi_core::{CubeLsi, CubeLsiConfig, TagDistances};
use cubelsi_datagen::{all_presets, generate, rawify, GeneratedDataset, RawNoiseConfig, WordKind};
use cubelsi_eval::tables::{fmt_duration, fmt_f};
use cubelsi_eval::{
    evaluate_tag_distances, format_bytes, generate_workload, ndcg_at, MemoryAccounting, Query,
    Table, WorkloadConfig,
};
use cubelsi_folksonomy::{clean, CleaningConfig, TagId};

/// Default dataset scale (fraction of the paper's Table II sizes).
pub const DEFAULT_SCALE: f64 = 0.02;
/// Default master seed.
pub const DEFAULT_SEED: u64 = 2011; // the paper's year

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Dataset scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: DEFAULT_SCALE,
            seed: DEFAULT_SEED,
        }
    }
}

impl RunOptions {
    /// Parses `--scale X` / `--seed N` from `std::env::args`, falling back
    /// to `CUBELSI_SCALE` / `CUBELSI_SEED` environment variables.
    pub fn from_args() -> Self {
        let mut opts = RunOptions::default();
        if let Ok(s) = std::env::var("CUBELSI_SCALE") {
            if let Ok(v) = s.parse() {
                opts.scale = v;
            }
        }
        if let Ok(s) = std::env::var("CUBELSI_SEED") {
            if let Ok(v) = s.parse() {
                opts.seed = v;
            }
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Ok(v) = args[i + 1].parse() {
                        opts.scale = v;
                    }
                    i += 2;
                }
                "--seed" => {
                    if let Ok(v) = args[i + 1].parse() {
                        opts.seed = v;
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
        opts
    }
}

/// One prepared evaluation corpus: dataset + query workload.
pub struct ExperimentContext {
    /// Preset name ("delicious" / "bibsonomy" / "lastfm").
    pub name: &'static str,
    /// The generated dataset with ground truth.
    pub dataset: GeneratedDataset,
    /// The 128-query evaluation workload.
    pub queries: Vec<Query>,
}

/// Generates all three preset corpora, applies the §VI-A cleaning pipeline
/// (the paper's experiments all run on *cleaned* data), rebinds the ground
/// truth to the cleaned id space, and builds the query workloads.
pub fn prepare_contexts(opts: RunOptions) -> Vec<ExperimentContext> {
    all_presets(opts.scale, opts.seed)
        .into_iter()
        .map(|preset| {
            let dataset = generate(&preset.config);
            let (cleaned, _report) = clean(&dataset.folksonomy, &CleaningConfig::default());
            let dataset = dataset.rebind(cleaned);
            let queries = generate_workload(
                &dataset,
                &WorkloadConfig {
                    seed: opts.seed ^ 0x9e4,
                    ..Default::default()
                },
            );
            ExperimentContext {
                name: preset.name,
                dataset,
                queries,
            }
        })
        .collect()
}

/// Clamps a reduction ratio so the resulting core dimension stays at or
/// above `min_j` (small corpora cannot afford the paper's c = 50 without
/// degenerating to rank 1–2 cores).
pub fn effective_ratio(dim: usize, preferred: f64, min_j: usize) -> f64 {
    let max_c = dim as f64 / min_j as f64;
    preferred.min(max_c).max(1.0)
}

/// Minimum useful core dimension: the latent space must at least be able
/// to separate the corpus's concepts. The paper's corpora are large enough
/// that `c = 50` gives `J ≫ #topics` for free (J₂ = 147 on Delicious);
/// scaled-down corpora need this guard or the core degenerates below the
/// concept count and *all* decomposition-based methods collapse.
pub fn min_core_dim(num_concepts: usize) -> usize {
    (2 * num_concepts).max(8)
}

/// The CubeLSI configuration used by the quality experiments: reduction
/// ratios as close to the paper's 50 as the corpus size allows, concept
/// count fixed to the generator's truth so all concept-based methods are
/// compared at identical k.
pub fn cubelsi_config(
    dims: (usize, usize, usize),
    num_concepts: usize,
    seed: u64,
) -> CubeLsiConfig {
    let min_j = min_core_dim(num_concepts);
    CubeLsiConfig {
        reduction_ratios: (
            effective_ratio(dims.0, 50.0, min_j),
            effective_ratio(dims.1, 50.0, min_j),
            effective_ratio(dims.2, 50.0, min_j),
        ),
        num_concepts: Some(num_concepts),
        max_als_iters: 8,
        seed,
        ..Default::default()
    }
}

/// LSI configured symmetrically to [`cubelsi_config`].
pub fn lsi_config(
    num_tags: usize,
    num_resources: usize,
    num_concepts: usize,
    seed: u64,
) -> LsiConfig {
    let min_j = min_core_dim(num_concepts);
    LsiConfig {
        rank: Some(
            ((num_tags as f64 / effective_ratio(num_tags, 50.0, min_j)).round() as usize)
                .clamp(1, num_tags.min(num_resources)),
        ),
        num_concepts: Some(num_concepts),
        seed,
        ..Default::default()
    }
}

/// CubeSim configured symmetrically (sparse mode for quality experiments).
pub fn cubesim_config(num_concepts: usize, seed: u64) -> CubeSimConfig {
    CubeSimConfig {
        mode: CubeSimMode::SparseOptimized,
        num_concepts: Some(num_concepts),
        seed,
        ..Default::default()
    }
}

/// Mean NDCG@N of a ranker over a workload (Figure 4's y-axis).
/// Rankings are obtained through [`Ranker::search_batch_ids`], so engines
/// with a native batch path (CubeLSI) answer the whole workload in one
/// parallel call.
pub fn mean_ndcg(ranker: &dyn Ranker, queries: &[Query], n: usize) -> f64 {
    let tag_sets: Vec<Vec<TagId>> = queries.iter().map(|q| q.tags.clone()).collect();
    let rankings = ranker.search_batch_ids(&tag_sets, n);
    let mut total = 0.0;
    for (q, ranked) in queries.iter().zip(rankings.iter()) {
        let grades: Vec<u8> = ranked
            .iter()
            .map(|r| q.relevance[r.resource.index()])
            .collect();
        total += ndcg_at(&grades, &q.relevance, n);
    }
    total / queries.len().max(1) as f64
}

/// Builds all six rankers for one corpus. Returns them with their build
/// (pre-processing) durations.
pub fn build_all_rankers(ctx: &ExperimentContext, seed: u64) -> Vec<(Box<dyn Ranker>, Duration)> {
    let f = &ctx.dataset.folksonomy;
    let dims = (f.num_users(), f.num_tags(), f.num_resources());
    let k = ctx.dataset.truth.concept_words.len();
    let mut out: Vec<(Box<dyn Ranker>, Duration)> = Vec::new();

    let t0 = Instant::now();
    let engine = CubeLsi::build(f, &cubelsi_config(dims, k, seed)).expect("CubeLSI build");
    out.push((
        Box::new(cubelsi_baselines::CubeLsiRanker(engine)),
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let cubesim = CubeSim::build(f, &cubesim_config(k, seed)).expect("CubeSim build");
    out.push((Box::new(cubesim), t0.elapsed()));

    let t0 = Instant::now();
    let folkrank = FolkRank::build(f, &FolkRankConfig::default());
    out.push((Box::new(folkrank), t0.elapsed()));

    let t0 = Instant::now();
    let freq = FreqRanker::build(f);
    out.push((Box::new(freq), t0.elapsed()));

    let t0 = Instant::now();
    let lsi = LsiRanker::build(f, &lsi_config(dims.1, dims.2, k, seed)).expect("LSI build");
    out.push((Box::new(lsi), t0.elapsed()));

    let t0 = Instant::now();
    let bow = BowRanker::build(f);
    out.push((Box::new(bow), t0.elapsed()));

    out
}

// ---------------------------------------------------------------------
// Table I — tag pairs and their semantic relations
// ---------------------------------------------------------------------

/// Judges pair relatedness by comparing a method's distance to its corpus
/// median (below median ⇒ related).
fn judge(dist: &TagDistances, median: f64, a: usize, b: usize) -> &'static str {
    if dist.get(a, b) < median {
        "Y"
    } else {
        "N"
    }
}

/// Reproduces Table I: sample related/unrelated tag pairs (per the ground
/// truth standing in for the human judges) and report CubeLSI's and LSI's
/// verdicts, plus overall agreement rates.
pub fn table1(ctx: &ExperimentContext, seed: u64) -> Table {
    let f = &ctx.dataset.folksonomy;
    let truth = &ctx.dataset.truth;
    let dims = (f.num_users(), f.num_tags(), f.num_resources());
    let k = truth.concept_words.len();

    let engine = CubeLsi::build(f, &cubelsi_config(dims, k, seed)).expect("CubeLSI build");
    let (lsi_dist, _) =
        LsiRanker::distances_only(f, &lsi_config(dims.1, dims.2, k, seed)).expect("LSI distances");
    let cube_dist = engine.distances();
    let cube_med = cube_dist.median_offdiag();
    let lsi_med = lsi_dist.median_offdiag();

    // Collect ground-truth related (same concept) and unrelated pairs among
    // reasonably frequent tags (rare tags carry no usable signal).
    let frequent: Vec<usize> = (0..f.num_tags())
        .filter(|&t| f.tag_assignments(TagId::from_index(t)).len() >= 5)
        .collect();
    let mut related = Vec::new();
    let mut unrelated = Vec::new();
    for (ia, &a) in frequent.iter().enumerate() {
        for &b in frequent.iter().skip(ia + 1) {
            if truth.tags_share_concept(a, b) {
                related.push((a, b));
            } else if !truth.tag_concepts[a].is_empty() && !truth.tag_concepts[b].is_empty() {
                unrelated.push((a, b));
            }
        }
    }

    let mut table = Table::new(
        "Table I — tag pairs and their semantic relations (Y = related)",
        &["tag pair", "ground truth", "CubeLSI", "LSI"],
    );
    let name = |t: usize| f.tag_name(TagId::from_index(t)).to_owned();
    for &(a, b) in related.iter().take(3) {
        table.row(&[
            format!("<{}, {}>", name(a), name(b)),
            "Y".into(),
            judge(cube_dist, cube_med, a, b).into(),
            judge(&lsi_dist, lsi_med, a, b).into(),
        ]);
    }
    for &(a, b) in unrelated.iter().take(3) {
        table.row(&[
            format!("<{}, {}>", name(a), name(b)),
            "N".into(),
            judge(cube_dist, cube_med, a, b).into(),
            judge(&lsi_dist, lsi_med, a, b).into(),
        ]);
    }
    // Aggregate agreement over a larger sample.
    let sample = |pairs: &[(usize, usize)], expected: &str| {
        let take = pairs.len().min(300);
        let mut cube_ok = 0usize;
        let mut lsi_ok = 0usize;
        for &(a, b) in pairs.iter().take(take) {
            if judge(cube_dist, cube_med, a, b) == expected {
                cube_ok += 1;
            }
            if judge(&lsi_dist, lsi_med, a, b) == expected {
                lsi_ok += 1;
            }
        }
        (cube_ok, lsi_ok, take)
    };
    let (cr, lr, nr) = sample(&related, "Y");
    let (cu, lu, nu) = sample(&unrelated, "N");
    table.row(&[
        format!("[agreement on {nr} related pairs]"),
        "Y".into(),
        fmt_f(cr as f64 / nr.max(1) as f64, 2),
        fmt_f(lr as f64 / nr.max(1) as f64, 2),
    ]);
    table.row(&[
        format!("[agreement on {nu} unrelated pairs]"),
        "N".into(),
        fmt_f(cu as f64 / nu.max(1) as f64, 2),
        fmt_f(lu as f64 / nu.max(1) as f64, 2),
    ]);
    table
}

// ---------------------------------------------------------------------
// Table II — dataset statistics (raw vs cleaned)
// ---------------------------------------------------------------------

/// Reproduces Table II: raw and cleaned statistics of the three corpora.
pub fn table2(opts: RunOptions) -> Table {
    let mut table = Table::new(
        format!("Table II — dataset statistics (scale {})", opts.scale),
        &["dataset", "layer", "|U|", "|T|", "|R|", "|Y|"],
    );
    for preset in all_presets(opts.scale, opts.seed) {
        let ds = generate(&preset.config);
        let raw = rawify(
            &ds.folksonomy,
            &RawNoiseConfig {
                seed: opts.seed ^ 0x7a9,
                ..Default::default()
            },
        );
        let (cleaned, _report) = clean(&raw, &CleaningConfig::default());
        for (layer, stats) in [("raw", raw.stats()), ("cleaned", cleaned.stats())] {
            table.row(&[
                preset.name.to_string(),
                layer.to_string(),
                stats.users.to_string(),
                stats.tags.to_string(),
                stats.resources.to_string(),
                stats.assignments.to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------
// Table III — JCN_avg and Rank_avg
// ---------------------------------------------------------------------

/// Reproduces Table III on the Bibsonomy-like corpus: average JCN distance
/// and average rank of each method's most-similar-tag picks.
pub fn table3(ctx: &ExperimentContext, seed: u64) -> Table {
    let f = &ctx.dataset.folksonomy;
    let truth = &ctx.dataset.truth;
    let dims = (f.num_users(), f.num_tags(), f.num_resources());
    let k = truth.concept_words.len();

    // D: tags covered by the taxonomy — every generated tag is, mirroring
    // the paper's restriction to WordNet-covered tags (50.3% there, 100%
    // here because the generator draws tags *from* the taxonomy). The
    // paper additionally evaluates on *cleaned* data where every tag has
    // ≥ 5 assignments, so rare drive-by tags (pure noise for every
    // method) are excluded from D the same way.
    let covered: Vec<usize> = (0..f.num_tags())
        .filter(|&t| f.tag_assignments(TagId::from_index(t)).len() >= 5)
        .collect();

    let engine = CubeLsi::build(f, &cubelsi_config(dims, k, seed)).expect("CubeLSI build");
    let tensor = cubelsi_core::build_tensor(f).expect("tensor");
    let (cubesim_dist, _) = CubeSim::distances_with_report(&tensor, CubeSimMode::SparseOptimized);
    let (lsi_dist, _) =
        LsiRanker::distances_only(f, &lsi_config(dims.1, dims.2, k, seed)).expect("LSI");

    let methods: Vec<(&str, &TagDistances)> = vec![
        ("CubeLSI", engine.distances()),
        ("CubeSim", &cubesim_dist),
        ("LSI", &lsi_dist),
    ];
    let mut table = Table::new(
        "Table III — JCN_avg and Rank_avg under different methods (lower is better)",
        &["metric", "CubeLSI", "CubeSim", "LSI"],
    );
    let mut jcn_row = vec!["Average JCN".to_string()];
    let mut rank_row = vec!["Average Rank".to_string()];
    for (_, dist) in &methods {
        // t_sim is searched within the cleaned vocabulary D, mirroring the
        // paper's setting where the corpus contains no sub-threshold tags.
        let nearest_in_d = |t: usize| {
            covered
                .iter()
                .copied()
                .filter(|&o| o != t)
                .min_by(|&a, &b| {
                    dist.get(t, a)
                        .partial_cmp(&dist.get(t, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        };
        let eval = evaluate_tag_distances(truth, &covered, nearest_in_d);
        jcn_row.push(fmt_f(eval.jcn_avg, 2));
        rank_row.push(fmt_f(eval.rank_avg, 2));
    }
    table.row(&jcn_row);
    table.row(&rank_row);
    table
}

// ---------------------------------------------------------------------
// Table IV — sample tag clusters
// ---------------------------------------------------------------------

/// Reproduces Table IV: clusters found by CubeLSI labeled by the lexical
/// correlation types they exhibit (synonyms, cognates, morphological
/// variants, abbreviations).
pub fn table4(ctx: &ExperimentContext, seed: u64) -> Table {
    let f = &ctx.dataset.folksonomy;
    let truth = &ctx.dataset.truth;
    let dims = (f.num_users(), f.num_tags(), f.num_resources());
    let k = truth.concept_words.len();
    let engine = CubeLsi::build(f, &cubelsi_config(dims, k, seed)).expect("CubeLSI build");
    let model = engine.concepts();

    let mut table = Table::new(
        "Table IV — sample tag clusters discovered by CubeLSI",
        &["type of correlation", "tags (cluster excerpt)"],
    );
    let mut shown: Vec<&'static str> = Vec::new();
    for concept in 0..model.num_concepts() {
        let tags = model.tags_of(concept);
        if tags.len() < 2 {
            continue;
        }
        // Inspect lexical relations among cluster members sharing a group.
        for &a in tags {
            for &b in tags {
                if a >= b {
                    continue;
                }
                let wa = truth.lexicon.word(truth.tag_words[a]);
                let wb = truth.lexicon.word(truth.tag_words[b]);
                if wa.group != wb.group {
                    continue;
                }
                let label: Option<&'static str> = match (wa.kind, wb.kind) {
                    (WordKind::Cognate, _) | (_, WordKind::Cognate) => {
                        Some("cognates (cross-language)")
                    }
                    (WordKind::MorphVariant, _) | (_, WordKind::MorphVariant) => {
                        Some("inflection & derivation")
                    }
                    (WordKind::Abbreviation, _) | (_, WordKind::Abbreviation) => {
                        Some("abbreviations")
                    }
                    _ => Some("synonyms (same synset)"),
                };
                if let Some(label) = label {
                    if shown.contains(&label) {
                        continue;
                    }
                    shown.push(label);
                    let excerpt: Vec<String> = tags
                        .iter()
                        .take(5)
                        .map(|&t| f.tag_name(TagId::from_index(t)).to_owned())
                        .collect();
                    table.row(&[label.to_string(), excerpt.join(", ")]);
                }
            }
        }
    }
    // Latent relatedness row: a cluster joining tags of *different* groups
    // but one concept (the "YouTube/movie" phenomenon).
    'outer: for concept in 0..model.num_concepts() {
        let tags = model.tags_of(concept);
        for &a in tags {
            for &b in tags {
                if a >= b {
                    continue;
                }
                let wa = truth.lexicon.word(truth.tag_words[a]);
                let wb = truth.lexicon.word(truth.tag_words[b]);
                if wa.group != wb.group && truth.tags_share_concept(a, b) {
                    let excerpt: Vec<String> = tags
                        .iter()
                        .take(5)
                        .map(|&t| f.tag_name(TagId::from_index(t)).to_owned())
                        .collect();
                    table.row(&[
                        "latent relatedness (same concept)".to_string(),
                        excerpt.join(", "),
                    ]);
                    break 'outer;
                }
            }
        }
    }
    table
}

// ---------------------------------------------------------------------
// Table V — pre-processing times
// ---------------------------------------------------------------------

/// Reproduces Table V: CubeLSI vs CubeSim pre-processing time per corpus.
/// The faithful-dense CubeSim gets `budget`; exceeding it reports a DNF
/// with the extrapolated total (the paper's "> 100 h" cell).
pub fn table5(contexts: &[ExperimentContext], seed: u64, budget: Duration) -> Table {
    let mut table = Table::new(
        "Table V — pre-processing times of CubeLSI and CubeSim",
        &[
            "dataset",
            "CubeLSI",
            "CubeSim (dense, as in paper)",
            "CubeSim (sparse ext.)",
        ],
    );
    for ctx in contexts {
        let f = &ctx.dataset.folksonomy;
        let dims = (f.num_users(), f.num_tags(), f.num_resources());
        let k = ctx.dataset.truth.concept_words.len();

        let t0 = Instant::now();
        let _engine = CubeLsi::build(f, &cubelsi_config(dims, k, seed)).expect("CubeLSI");
        let cubelsi_time = t0.elapsed();

        let tensor = cubelsi_core::build_tensor(f).expect("tensor");
        let (_, dense_report) = CubeSim::distances_with_report(
            &tensor,
            CubeSimMode::FaithfulDense {
                budget: Some(budget),
            },
        );
        let dense_cell = if dense_report.completed {
            fmt_duration(dense_report.elapsed)
        } else {
            format!(
                "DNF > {} (est. {})",
                fmt_duration(budget),
                fmt_duration(dense_report.estimated_total)
            )
        };

        let t0 = Instant::now();
        let (_, _sparse_report) =
            CubeSim::distances_with_report(&tensor, CubeSimMode::SparseOptimized);
        let sparse_time = t0.elapsed();

        table.row(&[
            ctx.name.to_string(),
            fmt_duration(cubelsi_time),
            dense_cell,
            fmt_duration(sparse_time),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Table VI — query-processing times
// ---------------------------------------------------------------------

/// Reproduces Table VI: total query-processing time of CubeLSI vs FolkRank
/// over the full workload.
pub fn table6(contexts: &[ExperimentContext], seed: u64) -> Table {
    let mut table = Table::new(
        "Table VI — query-processing times over the workload",
        &["dataset", "queries", "FolkRank", "CubeLSI"],
    );
    for ctx in contexts {
        let f = &ctx.dataset.folksonomy;
        let dims = (f.num_users(), f.num_tags(), f.num_resources());
        let k = ctx.dataset.truth.concept_words.len();
        let engine = CubeLsi::build(f, &cubelsi_config(dims, k, seed)).expect("CubeLSI");
        let folkrank = FolkRank::build(f, &FolkRankConfig::default());

        let t0 = Instant::now();
        for q in &ctx.queries {
            let _ = folkrank.search_ids(&q.tags, 20);
        }
        let folkrank_time = t0.elapsed();

        let t0 = Instant::now();
        for q in &ctx.queries {
            let _ = engine.search_ids(&q.tags, 20);
        }
        let cubelsi_time = t0.elapsed();

        table.row(&[
            ctx.name.to_string(),
            ctx.queries.len().to_string(),
            fmt_duration(folkrank_time),
            fmt_duration(cubelsi_time),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Table VII — memory requirements
// ---------------------------------------------------------------------

/// Reproduces Table VII at the paper's published dimensions *and* at the
/// current run's scale.
pub fn table7(contexts: &[ExperimentContext]) -> Table {
    let mut table = Table::new(
        "Table VII — memory: dense F̂ vs Σ+Y⁽²⁾ (c = 50 at paper scale)",
        &[
            "dataset",
            "dims (U×T×R)",
            "dense F̂",
            "Σ + Y⁽²⁾",
            "full S+Y(1..3)",
        ],
    );
    // Paper-scale rows (Table II cleaned dimensions).
    let paper_dims = [
        ("delicious (paper)", (28_939usize, 7_342usize, 4_118usize)),
        ("bibsonomy (paper)", (732, 4_702, 35_708)),
        ("lastfm (paper)", (3_897, 3_326, 2_849)),
    ];
    for (name, dims) in paper_dims {
        let m = MemoryAccounting::from_ratios(dims, (50.0, 50.0, 50.0));
        table.row(&[
            name.to_string(),
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            format_bytes(m.dense_purified_bytes()),
            format_bytes(m.sigma_y2_bytes()),
            format_bytes(m.full_decomposition_bytes()),
        ]);
    }
    // This-run rows.
    for ctx in contexts {
        let f = &ctx.dataset.folksonomy;
        let dims = (f.num_users(), f.num_tags(), f.num_resources());
        let c = (
            effective_ratio(dims.0, 50.0, 8),
            effective_ratio(dims.1, 50.0, 8),
            effective_ratio(dims.2, 50.0, 8),
        );
        let m = MemoryAccounting::from_ratios(dims, c);
        table.row(&[
            format!("{} (this run)", ctx.name),
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            format_bytes(m.dense_purified_bytes()),
            format_bytes(m.sigma_y2_bytes()),
            format_bytes(m.full_decomposition_bytes()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Figure 4 — NDCG@N of the six ranking methods
// ---------------------------------------------------------------------

/// The N cut-offs of Figure 4.
pub const FIGURE4_CUTOFFS: [usize; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20];

/// Reproduces one panel of Figure 4 (one dataset): NDCG@N per method.
pub fn figure4_panel(ctx: &ExperimentContext, seed: u64) -> Table {
    let rankers = build_all_rankers(ctx, seed);
    let mut headers: Vec<String> = vec!["N".to_string()];
    headers.extend(rankers.iter().map(|(r, _)| r.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!(
            "Figure 4 ({}) — NDCG@N of the six ranking methods",
            ctx.name
        ),
        &header_refs,
    );
    for n in FIGURE4_CUTOFFS {
        let mut row = vec![n.to_string()];
        for (ranker, _) in &rankers {
            row.push(fmt_f(mean_ndcg(ranker.as_ref(), &ctx.queries, n), 3));
        }
        table.row(&row);
    }
    table
}

// ---------------------------------------------------------------------
// Figure 5 — pre-processing time vs reduction ratios
// ---------------------------------------------------------------------

/// The reduction-ratio sweep of Figure 5.
pub const FIGURE5_RATIOS: [f64; 7] = [20.0, 30.0, 40.0, 50.0, 100.0, 150.0, 200.0];

/// Reproduces Figure 5: CubeLSI pre-processing time against the reduction
/// ratios `c₁ = c₂ = c₃` for every dataset.
pub fn figure5(contexts: &[ExperimentContext], seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 5 — CubeLSI pre-processing time vs reduction ratios",
        &["c (=c1=c2=c3)", "delicious", "bibsonomy", "lastfm"],
    );
    let mut rows: Vec<Vec<String>> = FIGURE5_RATIOS
        .iter()
        .map(|c| vec![format!("{c:.0}")])
        .collect();
    for ctx in contexts {
        let f = &ctx.dataset.folksonomy;
        let dims = (f.num_users(), f.num_tags(), f.num_resources());
        let k = ctx.dataset.truth.concept_words.len();
        for (ri, &c) in FIGURE5_RATIOS.iter().enumerate() {
            let mut cfg = cubelsi_config(dims, k, seed);
            // Clamp to keep cores at least 2-dimensional but honour the
            // sweep's ordering.
            cfg.reduction_ratios = (
                effective_ratio(dims.0, c, 2),
                effective_ratio(dims.1, c, 2),
                effective_ratio(dims.2, c, 2),
            );
            let t0 = Instant::now();
            let _ = CubeLsi::build(f, &cfg).expect("CubeLSI build");
            rows[ri].push(fmt_duration(t0.elapsed()));
        }
    }
    for row in rows {
        table.row(&row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            scale: 0.002,
            seed: 7,
        }
    }

    #[test]
    fn effective_ratio_clamps() {
        assert_eq!(effective_ratio(1000, 50.0, 8), 50.0);
        assert_eq!(effective_ratio(100, 50.0, 8), 12.5);
        assert_eq!(effective_ratio(4, 50.0, 8), 1.0);
    }

    #[test]
    fn contexts_prepare_at_tiny_scale() {
        let contexts = prepare_contexts(tiny_opts());
        assert_eq!(contexts.len(), 3);
        for ctx in &contexts {
            assert!(ctx.dataset.folksonomy.num_assignments() > 100);
            assert_eq!(ctx.queries.len(), 128);
        }
    }

    #[test]
    fn table2_has_six_rows() {
        let t = table2(tiny_opts());
        assert_eq!(t.num_rows(), 6);
    }

    #[test]
    fn mean_ndcg_is_in_unit_interval() {
        let contexts = prepare_contexts(tiny_opts());
        let ctx = &contexts[2]; // lastfm = smallest
        let f = &ctx.dataset.folksonomy;
        let freq = FreqRanker::build(f);
        let score = mean_ndcg(&freq, &ctx.queries, 10);
        assert!((0.0..=1.0).contains(&score), "NDCG = {score}");
    }
}
