//! Experiment harness for the CubeLSI reproduction.
//!
//! One binary per table/figure of the paper's §VI lives in `src/bin/`
//! (`table1` … `table7`, `figure4`, `figure5`, plus `run_all`); they are
//! thin wrappers over [`experiments`], which is also exercised at tiny
//! scale by the workspace integration tests. Criterion micro-benches live
//! in `benches/`.
//!
//! All experiments accept a `--scale` argument (or the `CUBELSI_SCALE`
//! environment variable) that multiplies the Table II dataset sizes;
//! the default of 0.02 keeps every experiment laptop-sized while
//! preserving the evaluation's shape. `--seed` overrides the master seed.

pub mod experiments;

pub use experiments::*;
