//! Third-order tensors and Tucker decomposition for CubeLSI.
//!
//! The paper represents a social tagging system as a third-order binary
//! tensor `F ∈ {0,1}^{|U|×|T|×|R|}` (§IV-A) and purifies it with a Tucker
//! decomposition computed by alternating least squares (§IV-C). Because no
//! tensor-decomposition crates exist for Rust, this crate implements the
//! whole stack:
//!
//! * [`SparseTensor3`] — coordinate-format sparse tensor with mode
//!   unfoldings exposed as [`cubelsi_linalg::CsrMatrix`] and fused
//!   tensor-times-matrix (TTM) kernels that never densify `F`;
//! * [`DenseTensor3`] — small dense tensors (core tensors, test fixtures)
//!   with n-mode products and unfoldings;
//! * [`tucker`] — HOSVD initialization + HOOI/ALS iterations producing the
//!   trimmed core `S`, factor matrices `Y⁽ⁿ⁾`, and the `Λ₂` by-product that
//!   Theorem 2 of the paper turns into the distance shortcut.
//!
//! Everything is exercised against brute-force dense references in the unit
//! and property tests.

pub mod dense;
pub mod sparse;
pub mod tucker;

pub use dense::DenseTensor3;
pub use sparse::SparseTensor3;
pub use tucker::{tucker_als, TuckerConfig, TuckerDecomposition};
