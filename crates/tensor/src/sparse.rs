//! Sparse third-order tensors in coordinate format with per-mode indexes.
//!
//! The tag-assignment tensor `F` is binary and extremely sparse (§IV-A of
//! the paper: 36.9 *billion* cells but only 335,782 non-zeros for Last.fm).
//! Every algorithm in this repository therefore works off this type; dense
//! materialization is reserved for test-scale fixtures.
//!
//! For each mode the constructor builds a CSR-style grouping of the
//! non-zeros by that mode's index. This gives two things:
//!
//! * mode-n unfoldings as [`CsrMatrix`] (for the HOSVD Gram operators), and
//! * fused tensor-times-matrix kernels ([`SparseTensor3::ttm_except_unfolded`])
//!   whose output rows are disjoint per mode index, enabling clean
//!   fork–join parallelism.

use cubelsi_linalg::parallel;
use cubelsi_linalg::{CsrMatrix, LinAlgError, Matrix};

use crate::dense::DenseTensor3;

/// A sparse third-order tensor.
///
/// Mode numbering follows the paper: mode 1 = users, mode 2 = tags,
/// mode 3 = resources.
#[derive(Debug, Clone)]
pub struct SparseTensor3 {
    dims: (usize, usize, usize),
    /// Non-zeros sorted by (i, j, k); duplicates summed at construction.
    entries: Vec<Entry>,
    /// For each mode m (0-indexed), a permutation of `entries` grouped by
    /// that mode's index, plus group boundaries.
    mode_index: [ModeIndex; 3],
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    i: u32,
    j: u32,
    k: u32,
    v: f64,
}

#[derive(Debug, Clone, Default)]
struct ModeIndex {
    /// `ptr[x]..ptr[x+1]` indexes `order` for mode-index `x`.
    ptr: Vec<u32>,
    /// Positions into `entries`.
    order: Vec<u32>,
}

impl SparseTensor3 {
    /// Builds a sparse tensor from `(i, j, k, value)` quadruples; duplicate
    /// coordinates are summed. Returns an error on out-of-bounds indices.
    pub fn from_entries(
        dims: (usize, usize, usize),
        quads: &[(usize, usize, usize, f64)],
    ) -> Result<Self, LinAlgError> {
        let (d1, d2, d3) = dims;
        let mut entries: Vec<Entry> = Vec::with_capacity(quads.len());
        for &(i, j, k, v) in quads {
            if i >= d1 || j >= d2 || k >= d3 {
                return Err(LinAlgError::InvalidArgument(format!(
                    "entry ({i},{j},{k}) out of bounds for dims {dims:?}"
                )));
            }
            entries.push(Entry {
                i: i as u32,
                j: j as u32,
                k: k as u32,
                v,
            });
        }
        entries.sort_unstable_by_key(|e| (e.i, e.j, e.k));
        // Sum duplicates in place.
        let mut deduped: Vec<Entry> = Vec::with_capacity(entries.len());
        for e in entries {
            match deduped.last_mut() {
                Some(last) if last.i == e.i && last.j == e.j && last.k == e.k => last.v += e.v,
                _ => deduped.push(e),
            }
        }
        let mode_index = [
            build_mode_index(&deduped, d1, |e| e.i as usize),
            build_mode_index(&deduped, d2, |e| e.j as usize),
            build_mode_index(&deduped, d3, |e| e.k as usize),
        ];
        Ok(SparseTensor3 {
            dims,
            entries: deduped,
            mode_index,
        })
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Dimension of a (1-based) mode.
    pub fn dim(&self, mode: usize) -> usize {
        match mode {
            1 => self.dims.0,
            2 => self.dims.1,
            3 => self.dims.2,
            _ => panic!("mode must be 1, 2 or 3, got {mode}"),
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over `(i, j, k, value)` quadruples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|e| (e.i as usize, e.j as usize, e.k as usize, e.v))
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.entries.iter().map(|e| e.v * e.v).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// Number of non-zeros whose mode-`mode` index equals `x`.
    pub fn mode_fiber_nnz(&self, mode: usize, x: usize) -> usize {
        let idx = &self.mode_index[mode - 1];
        (idx.ptr[x + 1] - idx.ptr[x]) as usize
    }

    /// Materializes the tensor densely (tests / tiny fixtures only).
    pub fn to_dense(&self) -> DenseTensor3 {
        let (d1, d2, d3) = self.dims;
        let mut t = DenseTensor3::zeros(d1, d2, d3);
        for (i, j, k, v) in self.iter() {
            let cur = t.get(i, j, k);
            t.set(i, j, k, cur + v);
        }
        t
    }

    /// Mode-n unfolding as a sparse CSR matrix (Kolda–Bader column order,
    /// identical to [`DenseTensor3::unfold`]).
    ///
    /// Rows are assembled directly from the per-mode index — no COO
    /// round-trip and no global sort — with the per-row column sorts fanned
    /// out across parallel row bands. Each row is computed identically no
    /// matter how the bands fall, so the result is independent of the
    /// thread count and bit-identical to the former triples-based path.
    pub fn unfold_csr(&self, mode: usize) -> CsrMatrix {
        let (d1, d2, _) = self.dims;
        let (rows, cols): (usize, usize) = match mode {
            1 => (d1, d2 * self.dims.2),
            2 => (d2, d1 * self.dims.2),
            3 => (self.dims.2, d1 * d2),
            _ => panic!("mode must be 1, 2 or 3, got {mode}"),
        };
        let idx = &self.mode_index[mode - 1];
        let entries = &self.entries;
        let nnz = entries.len();
        let row_ptr: Vec<u32> = idx.ptr.clone();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];

        let fill_rows = |row_range: std::ops::Range<usize>,
                         col_band: &mut [u32],
                         val_band: &mut [f64],
                         band_offset: usize| {
            let mut scratch: Vec<(u32, f64)> = Vec::new();
            for row in row_range {
                let start = idx.ptr[row] as usize;
                let end = idx.ptr[row + 1] as usize;
                scratch.clear();
                for &pos in &idx.order[start..end] {
                    let e = &entries[pos as usize];
                    let col = match mode {
                        1 => e.j as usize + e.k as usize * d2,
                        2 => e.i as usize + e.k as usize * d1,
                        3 => e.i as usize + e.j as usize * d1,
                        _ => unreachable!(),
                    };
                    scratch.push((col as u32, e.v));
                }
                // Distinct coordinates map to distinct columns within a
                // row, so an unstable sort is deterministic here.
                scratch.sort_unstable_by_key(|&(c, _)| c);
                for (slot, &(c, v)) in scratch.iter().enumerate() {
                    col_band[start - band_offset + slot] = c;
                    val_band[start - band_offset + slot] = v;
                }
            }
        };

        let nthreads = parallel::num_threads().clamp(1, rows.max(1));
        if nthreads <= 1 || nnz < 4096 {
            fill_rows(0..rows, &mut col_idx, &mut values, 0);
        } else {
            // Contiguous row bands; the value/column arrays split exactly at
            // the row-pointer boundaries, so bands are disjoint.
            let rows_per = rows.div_ceil(nthreads);
            crossbeam::thread::scope(|scope| {
                let mut rest_c: &mut [u32] = &mut col_idx;
                let mut rest_v: &mut [f64] = &mut values;
                let mut row_start = 0usize;
                let mut taken = 0usize;
                while row_start < rows {
                    let row_end = (row_start + rows_per).min(rows);
                    let take = idx.ptr[row_end] as usize - taken;
                    let (band_c, tail_c) = rest_c.split_at_mut(take);
                    let (band_v, tail_v) = rest_v.split_at_mut(take);
                    rest_c = tail_c;
                    rest_v = tail_v;
                    let band_offset = taken;
                    taken += take;
                    let fill_rows = &fill_rows;
                    let range = row_start..row_end;
                    scope.spawn(move |_| fill_rows(range, band_c, band_v, band_offset));
                    row_start = row_end;
                }
            })
            .expect("unfold_csr worker thread panicked");
        }
        CsrMatrix::from_sorted_parts(rows, cols, row_ptr, col_idx, values)
            .expect("unfold rows are sorted and in bounds")
    }

    /// The mode-2 slice `F[:, j, :]` as a sparse user×resource matrix —
    /// the per-tag feature matrix of §IV-A, used by the CubeSim baseline.
    pub fn slice_mode2_csr(&self, j: usize) -> CsrMatrix {
        let (d1, _, d3) = self.dims;
        let idx = &self.mode_index[1];
        let triples: Vec<(usize, usize, f64)> = idx.order
            [idx.ptr[j] as usize..idx.ptr[j + 1] as usize]
            .iter()
            .map(|&pos| {
                let e = &self.entries[pos as usize];
                (e.i as usize, e.k as usize, e.v)
            })
            .collect();
        CsrMatrix::from_triples(d1, d3, &triples).expect("slice indices in bounds")
    }

    /// Fused tensor-times-matrix chain, unfolded along `mode`:
    ///
    /// * mode 1: returns `W₍₁₎` of `F ×₂ Y₂ᵀ ×₃ Y₃ᵀ` — shape `I₁ x (J₂·J₃)`,
    ///   column index `j₂ + j₃·J₂`;
    /// * mode 2: returns `W₍₂₎` of `F ×₁ Y₁ᵀ ×₃ Y₃ᵀ` — shape `I₂ x (J₁·J₃)`,
    ///   column index `j₁ + j₃·J₁`;
    /// * mode 3: returns `W₍₃₎` of `F ×₁ Y₁ᵀ ×₂ Y₂ᵀ` — shape `I₃ x (J₁·J₂)`,
    ///   column index `j₁ + j₂·J₁`.
    ///
    /// `ya` and `yb` are the factor matrices of the two *other* modes in
    /// ascending mode order (for mode 2: `ya = Y⁽¹⁾ ∈ R^{I₁×J₁}`,
    /// `yb = Y⁽³⁾ ∈ R^{I₃×J₃}`).
    ///
    /// Cost is `O(nnz · Jₐ · J_b)`; work is parallelized over mode-index
    /// groups whose output rows are disjoint.
    pub fn ttm_except_unfolded(
        &self,
        mode: usize,
        ya: &Matrix,
        yb: &Matrix,
    ) -> Result<Matrix, LinAlgError> {
        let mut out = Matrix::zeros(0, 0);
        self.ttm_except_unfolded_into(mode, ya, yb, &mut out)?;
        Ok(out)
    }

    /// [`Self::ttm_except_unfolded`] writing into a caller-owned buffer
    /// (resized and overwritten), so HOOI sweeps can reuse one `W` matrix
    /// per mode across iterations instead of allocating `Iₙ x ∏Jₘ` every
    /// update.
    pub fn ttm_except_unfolded_into(
        &self,
        mode: usize,
        ya: &Matrix,
        yb: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), LinAlgError> {
        let (d1, d2, d3) = self.dims;
        let (expect_a, expect_b, out_rows) = match mode {
            1 => (d2, d3, d1),
            2 => (d1, d3, d2),
            3 => (d1, d2, d3),
            _ => {
                return Err(LinAlgError::InvalidArgument(format!(
                    "mode must be 1, 2 or 3, got {mode}"
                )))
            }
        };
        if ya.rows() != expect_a || yb.rows() != expect_b {
            return Err(LinAlgError::DimensionMismatch {
                op: "ttm_except_unfolded",
                lhs: ya.shape(),
                rhs: yb.shape(),
            });
        }
        let ja = ya.cols();
        let jb = yb.cols();
        let out_cols = ja * jb;
        out.reset(out_rows, out_cols);
        let idx = &self.mode_index[mode - 1];
        let entries = &self.entries;

        // Partition output rows across threads; each row's fiber only
        // touches that row of the output, so bands are independent.
        let out_data = out.as_mut_slice();
        let bands: Vec<(usize, &mut [f64])> = split_rows(out_data, out_rows, out_cols);
        parallel_process_bands(bands, out_cols, |row, out_row| {
            let start = idx.ptr[row] as usize;
            let end = idx.ptr[row + 1] as usize;
            for &pos in &idx.order[start..end] {
                let e = &entries[pos as usize];
                let (a_idx, b_idx) = match mode {
                    1 => (e.j as usize, e.k as usize),
                    2 => (e.i as usize, e.k as usize),
                    3 => (e.i as usize, e.j as usize),
                    _ => unreachable!(),
                };
                let a_row = ya.row(a_idx);
                let b_row = yb.row(b_idx);
                for (jb_i, &bv) in b_row.iter().enumerate() {
                    let w = e.v * bv;
                    if w == 0.0 {
                        continue;
                    }
                    let out_seg = &mut out_row[jb_i * ja..(jb_i + 1) * ja];
                    for (o, &av) in out_seg.iter_mut().zip(a_row.iter()) {
                        *o += w * av;
                    }
                }
            }
        });
        Ok(())
    }

    /// Full three-way contraction `F ×₁ Y₁ᵀ ×₂ Y₂ᵀ ×₃ Y₃ᵀ` returning the
    /// (small, dense) core-sized tensor. Used for Eq. 16 of the paper.
    pub fn core_contract(
        &self,
        y1: &Matrix,
        y2: &Matrix,
        y3: &Matrix,
    ) -> Result<DenseTensor3, LinAlgError> {
        let (d1, d2, d3) = self.dims;
        if y1.rows() != d1 || y2.rows() != d2 || y3.rows() != d3 {
            return Err(LinAlgError::DimensionMismatch {
                op: "core_contract",
                lhs: (y1.rows(), y2.rows()),
                rhs: (y3.rows(), 0),
            });
        }
        // W₍₂₎ = (F ×₁ Y₁ᵀ ×₃ Y₃ᵀ)₍₂₎ is I₂ x (J₁·J₃); then S₍₂₎ = Y₂ᵀ W₍₂₎.
        let w2 = self.ttm_except_unfolded(2, y1, y3)?;
        let s2 = y2.transpose().matmul(&w2)?;
        DenseTensor3::fold(2, &s2, (y1.cols(), y2.cols(), y3.cols()))
    }
}

fn build_mode_index(entries: &[Entry], dim: usize, key: impl Fn(&Entry) -> usize) -> ModeIndex {
    let mut counts = vec![0u32; dim + 1];
    for e in entries {
        counts[key(e) + 1] += 1;
    }
    for x in 0..dim {
        counts[x + 1] += counts[x];
    }
    let ptr = counts.clone();
    let mut cursor = counts;
    let mut order = vec![0u32; entries.len()];
    for (pos, e) in entries.iter().enumerate() {
        let x = key(e);
        order[cursor[x] as usize] = pos as u32;
        cursor[x] += 1;
    }
    ModeIndex { ptr, order }
}

/// Splits a `rows x cols` row-major buffer into one band per output row
/// group, returning `(first_row, band)` pairs sized for the thread count.
fn split_rows(data: &mut [f64], rows: usize, cols: usize) -> Vec<(usize, &mut [f64])> {
    let nthreads = parallel::num_threads().clamp(1, rows.max(1));
    let rows_per = rows.div_ceil(nthreads.max(1)).max(1);
    let mut bands = Vec::new();
    let mut rest = data;
    let mut start_row = 0;
    while !rest.is_empty() {
        let take = (rows_per * cols).min(rest.len());
        let (band, tail) = rest.split_at_mut(take);
        bands.push((start_row, band));
        start_row += take / cols.max(1);
        rest = tail;
    }
    bands
}

/// Runs `f(row, row_slice)` for every row in every band, bands in parallel.
fn parallel_process_bands<F>(bands: Vec<(usize, &mut [f64])>, cols: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if bands.len() <= 1 {
        for (start_row, band) in bands {
            for (bi, row_slice) in band.chunks_mut(cols).enumerate() {
                f(start_row + bi, row_slice);
            }
        }
        return;
    }
    crossbeam::thread::scope(|scope| {
        for (start_row, band) in bands {
            let f = &f;
            scope.spawn(move |_| {
                for (bi, row_slice) in band.chunks_mut(cols).enumerate() {
                    f(start_row + bi, row_slice);
                }
            });
        }
    })
    .expect("ttm worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 running example: 3 users, 3 tags, 3 resources,
    /// 7 assignments.
    pub(crate) fn figure2_tensor() -> SparseTensor3 {
        // (u, t, r) triples, 0-indexed: records 1-7 of Figure 2(a).
        let quads = [
            (0, 0, 0, 1.0), // u1, t1(folk), r1
            (0, 0, 1, 1.0), // u1, t1, r2
            (1, 0, 1, 1.0), // u2, t1, r2
            (2, 0, 1, 1.0), // u3, t1, r2
            (0, 1, 0, 1.0), // u1, t2(people), r1
            (1, 2, 2, 1.0), // u2, t3(laptop), r3
            (2, 2, 2, 1.0), // u3, t3, r3
        ];
        SparseTensor3::from_entries((3, 3, 3), &quads).unwrap()
    }

    #[test]
    fn figure2_statistics() {
        let t = figure2_tensor();
        assert_eq!(t.dims(), (3, 3, 3));
        assert_eq!(t.nnz(), 7);
        assert_eq!(t.frobenius_norm_sq(), 7.0);
        assert_eq!(t.mode_fiber_nnz(2, 0), 4); // tag t1 has 4 assignments
        assert_eq!(t.mode_fiber_nnz(2, 1), 1);
        assert_eq!(t.mode_fiber_nnz(2, 2), 2);
    }

    #[test]
    fn duplicates_summed_and_bounds_checked() {
        let t = SparseTensor3::from_entries((2, 2, 2), &[(0, 0, 0, 1.0), (0, 0, 0, 2.0)]).unwrap();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.to_dense().get(0, 0, 0), 3.0);
        assert!(SparseTensor3::from_entries((2, 2, 2), &[(2, 0, 0, 1.0)]).is_err());
    }

    #[test]
    fn unfold_csr_matches_dense_unfold() {
        let t = figure2_tensor();
        let dense = t.to_dense();
        for mode in 1..=3 {
            let sparse_unf = t.unfold_csr(mode).to_dense();
            let dense_unf = dense.unfold(mode);
            assert!(
                sparse_unf.approx_eq(&dense_unf, 0.0),
                "mode {mode} unfolding mismatch"
            );
        }
    }

    #[test]
    fn mode2_unfolding_matches_paper_example() {
        // The paper's F(2) rows are the per-tag aggregates; check tag t1's
        // slice F[:,1,:] (Figure 2(b)): users u1..u3 tagged r2, u1 also r1.
        let t = figure2_tensor();
        let slice = t.slice_mode2_csr(0).to_dense();
        let expected = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ])
        .unwrap();
        assert!(slice.approx_eq(&expected, 0.0));
    }

    #[test]
    fn slice_frobenius_distances_match_paper_eq_9_12_13() {
        let t = figure2_tensor();
        let s1 = t.slice_mode2_csr(0).to_dense();
        let s2 = t.slice_mode2_csr(1).to_dense();
        let s3 = t.slice_mode2_csr(2).to_dense();
        let d12 = s1.sub(&s2).unwrap().frobenius_norm();
        let d13 = s1.sub(&s3).unwrap().frobenius_norm();
        let d23 = s2.sub(&s3).unwrap().frobenius_norm();
        assert!((d12 - 3.0f64.sqrt()).abs() < 1e-12, "D12 = √3 (Eq. 9)");
        assert!((d13 - 6.0f64.sqrt()).abs() < 1e-12, "D13 = √6 (Eq. 12)");
        assert!((d23 - 3.0f64.sqrt()).abs() < 1e-12, "D23 = √3 (Eq. 13)");
    }

    #[test]
    fn ttm_except_matches_dense_reference() {
        let t = figure2_tensor();
        let dense = t.to_dense();
        let y1 = Matrix::from_fn(3, 2, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let y2 = Matrix::from_fn(3, 2, |i, j| (i as f64 - j as f64) * 0.3 + 0.2);
        let y3 = Matrix::from_fn(3, 2, |i, j| ((i * j) as f64).sin() + 0.5);

        // mode 2: F ×1 Y1ᵀ ×3 Y3ᵀ, unfolded along mode 2.
        let fused = t.ttm_except_unfolded(2, &y1, &y3).unwrap();
        let reference = dense
            .mode_product(1, &y1.transpose())
            .unwrap()
            .mode_product(3, &y3.transpose())
            .unwrap()
            .unfold(2);
        assert!(fused.approx_eq(&reference, 1e-12), "mode 2 fused TTM");

        // mode 1: F ×2 Y2ᵀ ×3 Y3ᵀ.
        let fused = t.ttm_except_unfolded(1, &y2, &y3).unwrap();
        let reference = dense
            .mode_product(2, &y2.transpose())
            .unwrap()
            .mode_product(3, &y3.transpose())
            .unwrap()
            .unfold(1);
        assert!(fused.approx_eq(&reference, 1e-12), "mode 1 fused TTM");

        // mode 3: F ×1 Y1ᵀ ×2 Y2ᵀ.
        let fused = t.ttm_except_unfolded(3, &y1, &y2).unwrap();
        let reference = dense
            .mode_product(1, &y1.transpose())
            .unwrap()
            .mode_product(2, &y2.transpose())
            .unwrap()
            .unfold(3);
        assert!(fused.approx_eq(&reference, 1e-12), "mode 3 fused TTM");
    }

    #[test]
    fn ttm_into_reuses_dirty_scratch() {
        let t = figure2_tensor();
        let y1 = Matrix::from_fn(3, 2, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let y3 = Matrix::from_fn(3, 2, |i, j| ((i * j) as f64).sin() + 0.5);
        let fresh = t.ttm_except_unfolded(2, &y1, &y3).unwrap();
        let mut scratch = Matrix::from_fn(5, 9, |i, j| (i * j) as f64 + 1.0);
        t.ttm_except_unfolded_into(2, &y1, &y3, &mut scratch)
            .unwrap();
        assert!(
            scratch.approx_eq(&fresh, 0.0),
            "scratch reuse changed the TTM result"
        );
        // Reuse again with different factors; stale contents must not leak.
        t.ttm_except_unfolded_into(1, &y1, &y3, &mut scratch)
            .unwrap();
        let reference = t.ttm_except_unfolded(1, &y1, &y3).unwrap();
        assert!(scratch.approx_eq(&reference, 0.0));
    }

    #[test]
    fn unfold_csr_identical_across_thread_counts() {
        // Large enough to cross the parallel banding threshold.
        let mut quads = Vec::new();
        let mut state = 0xfeedu64;
        for _ in 0..6000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 7) as usize % 40;
            let j = (state >> 23) as usize % 30;
            let k = (state >> 41) as usize % 25;
            quads.push((i, j, k, ((state >> 11) as f64 / (1u64 << 53) as f64) + 0.1));
        }
        let t = SparseTensor3::from_entries((40, 30, 25), &quads).unwrap();
        for mode in 1..=3 {
            cubelsi_linalg::parallel::set_num_threads(1);
            let serial = t.unfold_csr(mode);
            cubelsi_linalg::parallel::set_num_threads(4);
            let par = t.unfold_csr(mode);
            cubelsi_linalg::parallel::set_num_threads(0);
            assert_eq!(serial, par, "mode {mode} unfolding depends on thread count");
            // And the fast path still matches the dense reference.
            assert!(serial.to_dense().approx_eq(&t.to_dense().unfold(mode), 0.0));
        }
    }

    #[test]
    fn ttm_except_rejects_bad_dims() {
        let t = figure2_tensor();
        let bad = Matrix::zeros(5, 2);
        let ok = Matrix::zeros(3, 2);
        assert!(t.ttm_except_unfolded(2, &bad, &ok).is_err());
        assert!(t.ttm_except_unfolded(9, &ok, &ok).is_err());
    }

    #[test]
    fn core_contract_matches_dense_reference() {
        let t = figure2_tensor();
        let dense = t.to_dense();
        let y1 = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.25 + 0.1);
        let y2 = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.1 });
        let y3 = Matrix::from_fn(3, 2, |i, j| (i as f64 * 0.5 - j as f64 * 0.2).cos());
        let core = t.core_contract(&y1, &y2, &y3).unwrap();
        let reference = dense
            .mode_product(1, &y1.transpose())
            .unwrap()
            .mode_product(2, &y2.transpose())
            .unwrap()
            .mode_product(3, &y3.transpose())
            .unwrap();
        assert!(core.approx_eq(&reference, 1e-12));
        assert_eq!(core.dims(), (2, 3, 2));
    }

    #[test]
    fn empty_tensor_is_fine() {
        let t = SparseTensor3::from_entries((4, 5, 6), &[]).unwrap();
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.frobenius_norm(), 0.0);
        let y1 = Matrix::zeros(4, 2);
        let y3 = Matrix::zeros(6, 2);
        let w = t.ttm_except_unfolded(2, &y1, &y3).unwrap();
        assert_eq!(w.shape(), (5, 4));
        assert_eq!(w.frobenius_norm(), 0.0);
    }

    #[test]
    fn iter_yields_sorted_unique_coords() {
        let t = figure2_tensor();
        let coords: Vec<(usize, usize, usize)> = t.iter().map(|(i, j, k, _)| (i, j, k)).collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(coords, sorted);
    }
}
