//! Small dense third-order tensors.
//!
//! Dense tensors appear in two places only: the *trimmed core tensor* `S`
//! (dimensions `J₁×J₂×J₃`, tiny by construction) and brute-force reference
//! computations in tests, where `F̂` is materialized to validate the
//! Theorem-1 shortcut. The production pipeline never builds a dense tensor
//! of data-scale dimensions.
//!
//! Unfoldings follow the Kolda–Bader convention, matching the identity the
//! paper uses in Theorem 1: `F̂₍₂₎ = Y⁽²⁾ S₍₂₎ (Y⁽³⁾ ⊗ Y⁽¹⁾)ᵀ`.

use cubelsi_linalg::{LinAlgError, Matrix};

/// A dense third-order tensor with dimensions `(d1, d2, d3)`.
///
/// Layout: `data[(i * d2 + j) * d3 + k]` for entry `(i, j, k)` — the last
/// index varies fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor3 {
    dims: (usize, usize, usize),
    data: Vec<f64>,
}

impl DenseTensor3 {
    /// Creates an all-zero tensor with the given dimensions.
    pub fn zeros(d1: usize, d2: usize, d3: usize) -> Self {
        DenseTensor3 {
            dims: (d1, d2, d3),
            data: vec![0.0; d1 * d2 * d3],
        }
    }

    /// Creates a tensor by evaluating `f` at every index triple.
    pub fn from_fn(
        d1: usize,
        d2: usize,
        d3: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut t = DenseTensor3::zeros(d1, d2, d3);
        for i in 0..d1 {
            for j in 0..d2 {
                for k in 0..d3 {
                    t.data[(i * d2 + j) * d3 + k] = f(i, j, k);
                }
            }
        }
        t
    }

    /// Creates a tensor taking ownership of a raw buffer in the native
    /// layout (`data[(i * d2 + j) * d3 + k]`).
    ///
    /// Returns an error when `data.len() != d1 * d2 * d3`.
    pub fn from_vec(d1: usize, d2: usize, d3: usize, data: Vec<f64>) -> Result<Self, LinAlgError> {
        if data.len() != d1 * d2 * d3 {
            return Err(LinAlgError::InvalidArgument(format!(
                "buffer of length {} cannot back a {d1}x{d2}x{d3} tensor",
                data.len()
            )));
        }
        Ok(DenseTensor3 {
            dims: (d1, d2, d3),
            data,
        })
    }

    /// Tensor dimensions `(d1, d2, d3)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Dimension of the given mode (1-based, matching the paper).
    pub fn dim(&self, mode: usize) -> usize {
        match mode {
            1 => self.dims.0,
            2 => self.dims.1,
            3 => self.dims.2,
            _ => panic!("mode must be 1, 2 or 3, got {mode}"),
        }
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        debug_assert!(i < self.dims.0 && j < self.dims.1 && k < self.dims.2);
        self.data[(i * self.dims.1 + j) * self.dims.2 + k]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        debug_assert!(i < self.dims.0 && j < self.dims.1 && k < self.dims.2);
        self.data[(i * self.dims.1 + j) * self.dims.2 + k] = v;
    }

    /// Borrow of the raw buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Squared Frobenius norm (Eq. 15 of the paper, squared).
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm (Eq. 15).
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// `true` when every entry differs by at most `tol`.
    pub fn approx_eq(&self, other: &DenseTensor3, tol: f64) -> bool {
        self.dims == other.dims
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Element-wise difference `self − other`.
    pub fn sub(&self, other: &DenseTensor3) -> Result<DenseTensor3, LinAlgError> {
        if self.dims != other.dims {
            return Err(LinAlgError::InvalidArgument(format!(
                "tensor dims {:?} vs {:?} in sub",
                self.dims, other.dims
            )));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(DenseTensor3 {
            dims: self.dims,
            data,
        })
    }

    /// Mode-n unfolding (Kolda–Bader convention):
    ///
    /// * mode 1 → `d1 x (d2·d3)`, column index `j + k·d2`;
    /// * mode 2 → `d2 x (d1·d3)`, column index `i + k·d1`;
    /// * mode 3 → `d3 x (d1·d2)`, column index `i + j·d1`.
    pub fn unfold(&self, mode: usize) -> Matrix {
        let (d1, d2, d3) = self.dims;
        match mode {
            1 => Matrix::from_fn(d1, d2 * d3, |i, col| {
                let j = col % d2;
                let k = col / d2;
                self.get(i, j, k)
            }),
            2 => Matrix::from_fn(d2, d1 * d3, |j, col| {
                let i = col % d1;
                let k = col / d1;
                self.get(i, j, k)
            }),
            3 => Matrix::from_fn(d3, d1 * d2, |k, col| {
                let i = col % d1;
                let j = col / d1;
                self.get(i, j, k)
            }),
            _ => panic!("mode must be 1, 2 or 3, got {mode}"),
        }
    }

    /// Inverse of [`DenseTensor3::unfold`]: folds a mode-n unfolded matrix
    /// back into a tensor with dimensions `dims`.
    pub fn fold(
        mode: usize,
        unfolded: &Matrix,
        dims: (usize, usize, usize),
    ) -> Result<DenseTensor3, LinAlgError> {
        let (d1, d2, d3) = dims;
        let expected = match mode {
            1 => (d1, d2 * d3),
            2 => (d2, d1 * d3),
            3 => (d3, d1 * d2),
            _ => {
                return Err(LinAlgError::InvalidArgument(format!(
                    "mode must be 1, 2 or 3, got {mode}"
                )))
            }
        };
        if unfolded.shape() != expected {
            return Err(LinAlgError::InvalidArgument(format!(
                "unfolded shape {:?} does not match mode-{mode} of {:?}",
                unfolded.shape(),
                dims
            )));
        }
        let mut t = DenseTensor3::zeros(d1, d2, d3);
        match mode {
            1 => {
                for i in 0..d1 {
                    for k in 0..d3 {
                        for j in 0..d2 {
                            t.set(i, j, k, unfolded[(i, j + k * d2)]);
                        }
                    }
                }
            }
            2 => {
                for j in 0..d2 {
                    for k in 0..d3 {
                        for i in 0..d1 {
                            t.set(i, j, k, unfolded[(j, i + k * d1)]);
                        }
                    }
                }
            }
            3 => {
                for k in 0..d3 {
                    for j in 0..d2 {
                        for i in 0..d1 {
                            t.set(i, j, k, unfolded[(k, i + j * d1)]);
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
        Ok(t)
    }

    /// n-mode product `self ×ₙ W` (Definition 1 of the paper):
    /// the mode-`n` dimension `Iₙ` is contracted against `W ∈ R^{Jₙ×Iₙ}`,
    /// producing a tensor whose mode-`n` dimension is `Jₙ`.
    pub fn mode_product(&self, mode: usize, w: &Matrix) -> Result<DenseTensor3, LinAlgError> {
        let in_dim = self.dim(mode);
        if w.cols() != in_dim {
            return Err(LinAlgError::DimensionMismatch {
                op: "mode_product",
                lhs: (w.rows(), w.cols()),
                rhs: (in_dim, 0),
            });
        }
        let (d1, d2, d3) = self.dims;
        let jn = w.rows();
        let out_dims = match mode {
            1 => (jn, d2, d3),
            2 => (d1, jn, d3),
            3 => (d1, d2, jn),
            _ => panic!("mode must be 1, 2 or 3"),
        };
        let mut out = DenseTensor3::zeros(out_dims.0, out_dims.1, out_dims.2);
        match mode {
            1 => {
                for jn_i in 0..jn {
                    let wrow = w.row(jn_i);
                    for (i, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        for j in 0..d2 {
                            for k in 0..d3 {
                                let v = self.get(i, j, k);
                                if v != 0.0 {
                                    let cur = out.get(jn_i, j, k);
                                    out.set(jn_i, j, k, cur + wv * v);
                                }
                            }
                        }
                    }
                }
            }
            2 => {
                for jn_i in 0..jn {
                    let wrow = w.row(jn_i);
                    for (j, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        for i in 0..d1 {
                            for k in 0..d3 {
                                let v = self.get(i, j, k);
                                if v != 0.0 {
                                    let cur = out.get(i, jn_i, k);
                                    out.set(i, jn_i, k, cur + wv * v);
                                }
                            }
                        }
                    }
                }
            }
            3 => {
                for jn_i in 0..jn {
                    let wrow = w.row(jn_i);
                    for (k, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        for i in 0..d1 {
                            for j in 0..d2 {
                                let v = self.get(i, j, k);
                                if v != 0.0 {
                                    let cur = out.get(i, j, jn_i);
                                    out.set(i, j, jn_i, cur + wv * v);
                                }
                            }
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
        Ok(out)
    }

    /// The mode-2 slice `F[:, j, :]` as a dense `d1 x d3` matrix — the
    /// paper's per-tag feature matrix `F₍:,t,:₎` (§IV-A).
    pub fn slice_mode2(&self, j: usize) -> Matrix {
        let (d1, _, d3) = self.dims;
        Matrix::from_fn(d1, d3, |i, k| self.get(i, j, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseTensor3 {
        DenseTensor3::from_fn(2, 3, 2, |i, j, k| (i * 100 + j * 10 + k) as f64)
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = DenseTensor3::zeros(2, 2, 2);
        t.set(1, 0, 1, 7.5);
        assert_eq!(t.get(1, 0, 1), 7.5);
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.dims(), (2, 2, 2));
        assert_eq!(t.dim(1), 2);
    }

    #[test]
    fn unfold_fold_round_trip_all_modes() {
        let t = sample();
        for mode in 1..=3 {
            let u = t.unfold(mode);
            let back = DenseTensor3::fold(mode, &u, t.dims()).unwrap();
            assert!(back.approx_eq(&t, 0.0), "mode {mode} round trip failed");
        }
    }

    #[test]
    fn unfold_shapes() {
        let t = sample();
        assert_eq!(t.unfold(1).shape(), (2, 6));
        assert_eq!(t.unfold(2).shape(), (3, 4));
        assert_eq!(t.unfold(3).shape(), (2, 6));
    }

    #[test]
    fn unfold_mode1_column_ordering() {
        // Kolda convention: column index j + k*d2 (mode-2 fastest).
        let t = sample();
        let u = t.unfold(1);
        // (i=1, j=2, k=1) → row 1, col 2 + 1*3 = 5.
        assert_eq!(u[(1, 5)], t.get(1, 2, 1));
        // (i=0, j=1, k=0) → row 0, col 1.
        assert_eq!(u[(0, 1)], t.get(0, 1, 0));
    }

    #[test]
    fn fold_rejects_bad_shapes() {
        let m = Matrix::zeros(3, 5);
        assert!(DenseTensor3::fold(2, &m, (2, 3, 2)).is_err());
        assert!(DenseTensor3::fold(4, &m, (2, 3, 2)).is_err());
    }

    #[test]
    fn mode_product_identity_is_noop() {
        let t = sample();
        for mode in 1..=3 {
            let eye = Matrix::identity(t.dim(mode));
            let p = t.mode_product(mode, &eye).unwrap();
            assert!(p.approx_eq(&t, 1e-12));
        }
    }

    #[test]
    fn mode_product_matches_unfolded_matmul() {
        // Defining property: (F ×n W)(n) = W · F(n).
        let t = sample();
        let w = Matrix::from_rows(&[vec![1.0, -1.0, 0.5], vec![0.0, 2.0, 1.0]]).unwrap();
        let p = t.mode_product(2, &w).unwrap();
        let expected_unfolded = w.matmul(&t.unfold(2)).unwrap();
        assert!(p.unfold(2).approx_eq(&expected_unfolded, 1e-12));
        assert_eq!(p.dims(), (2, 2, 2));
    }

    #[test]
    fn mode_product_dimension_check() {
        let t = sample();
        let w = Matrix::zeros(2, 5);
        assert!(t.mode_product(1, &w).is_err());
    }

    #[test]
    fn mode_products_commute_across_modes() {
        // (F ×1 A) ×3 B = (F ×3 B) ×1 A for distinct modes.
        let t = sample();
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap(); // 1x2
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![1.0, 1.0]]).unwrap(); // 2x2
        let left = t.mode_product(1, &a).unwrap().mode_product(3, &b).unwrap();
        let right = t.mode_product(3, &b).unwrap().mode_product(1, &a).unwrap();
        assert!(left.approx_eq(&right, 1e-12));
    }

    #[test]
    fn frobenius_norm_known() {
        let t = DenseTensor3::from_fn(1, 2, 2, |_, j, k| ((j * 2 + k) + 1) as f64);
        // entries 1,2,3,4 → norm² = 30.
        assert!((t.frobenius_norm_sq() - 30.0).abs() < 1e-12);
        assert!((t.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn slice_mode2_extracts_tag_matrix() {
        let t = sample();
        let s = t.slice_mode2(1);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], t.get(0, 1, 0));
        assert_eq!(s[(1, 1)], t.get(1, 1, 1));
    }

    #[test]
    fn sub_and_dims_mismatch() {
        let t = sample();
        let d = t.sub(&t).unwrap();
        assert_eq!(d.frobenius_norm(), 0.0);
        assert!(t.sub(&DenseTensor3::zeros(1, 1, 1)).is_err());
    }
}
