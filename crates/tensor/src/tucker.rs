//! Tucker decomposition via HOSVD initialization + HOOI/ALS iterations.
//!
//! Solves the trimmed Tucker problem of Definition 2 in the paper: given a
//! sparse `F ∈ R^{I₁×I₂×I₃}` and core dimensions `J₁, J₂, J₃` (usually set
//! through reduction ratios `cₙ = Iₙ/Jₙ`), find orthonormal factor matrices
//! `Y⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ}` and the core `S ∈ R^{J₁×J₂×J₃}` minimizing
//! `‖F − S ×₁ Y⁽¹⁾ ×₂ Y⁽²⁾ ×₃ Y⁽³⁾‖`.
//!
//! Two properties the rest of the pipeline depends on:
//!
//! * the purified tensor `F̂` is **never materialized** — fit is tracked via
//!   the orthonormality identity `‖F − F̂‖² = ‖F‖² − ‖S‖²`;
//! * the mode-2 singular values `Λ₂` of the final ALS step are returned as
//!   a by-product, enabling the paper's Theorem 2 shortcut
//!   `Σ = ((Λ₂)₁:J₂,₁:J₂)²`.

use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_linalg::svd::truncated_svd;
use cubelsi_linalg::{sym_eigs_topk, GramOp, LinAlgError, Matrix};

use crate::dense::DenseTensor3;
use crate::sparse::SparseTensor3;

/// Configuration for [`tucker_als`].
#[derive(Debug, Clone)]
pub struct TuckerConfig {
    /// Target core dimensions `(J₁, J₂, J₃)`; clamped to the tensor dims.
    pub core_dims: (usize, usize, usize),
    /// Maximum HOOI iterations (each iteration updates all three modes).
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between iterations.
    pub fit_tol: f64,
    /// Settings for the inner subspace-iteration eigensolver.
    pub subspace: SubspaceOptions,
    /// Use the fused single-pass Gram apply for the HOSVD initialization
    /// (default). `false` selects the materialized two-matmul reference
    /// path; both are bit-identical, the reference exists for equivalence
    /// tests and the build-phase bench.
    pub fused_gram: bool,
}

impl TuckerConfig {
    /// Builds a configuration from the paper's reduction ratios
    /// `cₙ = Iₙ/Jₙ ≥ 1` (§IV-C): `Jₙ = max(1, round(Iₙ/cₙ))`.
    pub fn from_reduction_ratios(
        dims: (usize, usize, usize),
        c1: f64,
        c2: f64,
        c3: f64,
    ) -> Result<Self, LinAlgError> {
        for (name, c) in [("c1", c1), ("c2", c2), ("c3", c3)] {
            if c.is_nan() || c < 1.0 {
                return Err(LinAlgError::InvalidArgument(format!(
                    "reduction ratio {name} must be >= 1, got {c}"
                )));
            }
        }
        let j = |i: usize, c: f64| ((i as f64 / c).round() as usize).clamp(1, i.max(1));
        Ok(TuckerConfig {
            core_dims: (j(dims.0, c1), j(dims.1, c2), j(dims.2, c3)),
            ..Default::default()
        })
    }
}

impl Default for TuckerConfig {
    fn default() -> Self {
        TuckerConfig {
            core_dims: (8, 8, 8),
            max_iters: 12,
            fit_tol: 1e-5,
            subspace: SubspaceOptions::default(),
            fused_gram: true,
        }
    }
}

/// Output of [`tucker_als`]: `F ≈ S ×₁ Y⁽¹⁾ ×₂ Y⁽²⁾ ×₃ Y⁽³⁾`.
#[derive(Debug, Clone)]
pub struct TuckerDecomposition {
    /// Trimmed core tensor `S ∈ R^{J₁×J₂×J₃}`.
    pub core: DenseTensor3,
    /// Orthonormal factor matrices `[Y⁽¹⁾, Y⁽²⁾, Y⁽³⁾]`, `Y⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ}`.
    pub factors: [Matrix; 3],
    /// Mode-2 singular values of the final ALS step (length `J₂`),
    /// the `Λ₂` by-product used by Theorem 2.
    pub lambda2: Vec<f64>,
    /// Final fit `1 − ‖F − F̂‖ / ‖F‖` (1 = exact).
    pub fit: f64,
    /// HOOI iterations executed.
    pub iterations: usize,
    /// Fit after each iteration, for convergence diagnostics.
    pub fit_history: Vec<f64>,
}

impl TuckerDecomposition {
    /// Materializes `F̂ = S ×₁ Y⁽¹⁾ ×₂ Y⁽²⁾ ×₃ Y⁽³⁾` densely.
    ///
    /// This is exactly what the paper proves you should *never* do at data
    /// scale (§IV-D); it exists for test-scale validation of Theorem 1.
    pub fn reconstruct(&self) -> Result<DenseTensor3, LinAlgError> {
        self.core
            .mode_product(1, &self.factors[0])?
            .mode_product(2, &self.factors[1])?
            .mode_product(3, &self.factors[2])
    }

    /// `Σ = S₍₂₎ S₍₂₎ᵀ` computed from the core tensor (the matrix named in
    /// Theorem 1: "a matrix that can be readily computed from the core
    /// tensor S"). Always exactly consistent with the factors.
    pub fn sigma_from_core(&self) -> Result<Matrix, LinAlgError> {
        let s2 = self.core.unfold(2);
        Ok(s2.gram_t())
    }

    /// `Σ = ((Λ₂)₁:J₂,₁:J₂)²` from the ALS by-product (Theorem 2). Equal to
    /// [`Self::sigma_from_core`] at an exact ALS fixed point; cheaper
    /// because no core unfolding product is needed.
    pub fn sigma_from_lambda2(&self) -> Matrix {
        let sq: Vec<f64> = self.lambda2.iter().map(|l| l * l).collect();
        Matrix::from_diag(&sq)
    }

    /// Number of `f64` values needed to store the compressed representation
    /// (`S` plus all three factor matrices) — the paper's Table VII notion
    /// of CubeLSI memory.
    pub fn compressed_len(&self) -> usize {
        let (j1, j2, j3) = self.core.dims();
        let factors: usize = self.factors.iter().map(|y| y.rows() * y.cols()).sum();
        j1 * j2 * j3 + factors
    }
}

/// Runs HOSVD-initialized HOOI/ALS on a sparse third-order tensor.
///
/// Each iteration updates the three factor matrices in mode order; each
/// update computes the fused TTM chain `W = F ×ₘ≠ₙ Y⁽ᵐ⁾ᵀ` (cost
/// `O(nnz·∏Jₘ)`) and takes the leading `Jₙ` left singular vectors of its
/// mode-n unfolding. After convergence the mode-2 step is refreshed once so
/// `Y⁽²⁾`/`Λ₂` are exactly the singular pairs of the final product matrix,
/// and the core is contracted from the final factors (Eq. 16).
pub fn tucker_als(
    f: &SparseTensor3,
    config: &TuckerConfig,
) -> Result<TuckerDecomposition, LinAlgError> {
    let dims = f.dims();
    let mut j1 = config.core_dims.0.clamp(1, dims.0);
    let mut j2 = config.core_dims.1.clamp(1, dims.1);
    let mut j3 = config.core_dims.2.clamp(1, dims.2);
    // A Tucker core rank can never exceed the product of the other two
    // (the mode-n unfolding of S has only ∏_{m≠n} Jₘ columns); clamp to a
    // feasible rank triple so every factor matrix gets its full width.
    loop {
        let (n1, n2, n3) = (j1.min(j2 * j3), j2.min(j1 * j3), j3.min(j1 * j2));
        if (n1, n2, n3) == (j1, j2, j3) {
            break;
        }
        (j1, j2, j3) = (n1, n2, n3);
    }
    if f.nnz() == 0 {
        return Err(LinAlgError::InvalidArgument(
            "cannot decompose an all-zero tensor".into(),
        ));
    }

    // --- HOSVD initialization: Y⁽ⁿ⁾ ← top-Jₙ eigenvectors of Aₙ Aₙᵀ where
    // Aₙ is the sparse mode-n unfolding.
    let mut factors: [Matrix; 3] = [
        hosvd_factor(f, 1, j1, config)?,
        hosvd_factor(f, 2, j2, config)?,
        hosvd_factor(f, 3, j3, config)?,
    ];

    let norm_f_sq = f.frobenius_norm_sq();
    let norm_f = norm_f_sq.sqrt();
    let mut fit_history = Vec::with_capacity(config.max_iters);
    let mut prev_fit = f64::NEG_INFINITY;
    let mut iterations = 0;

    // Per-sweep scratch, reused across all HOOI iterations: one W buffer
    // per mode plus the S₍₂₎ projection. Nothing in the sweep allocates a
    // fresh `Iₙ x ∏Jₘ` matrix after the first iteration.
    let mut w_scratch: [Matrix; 3] = [
        Matrix::zeros(0, 0),
        Matrix::zeros(0, 0),
        Matrix::zeros(0, 0),
    ];
    let mut s2_scratch = Matrix::zeros(0, 0);
    // Bitwise change tracking: `version[m]` bumps whenever factor m changes;
    // a mode whose two input factors are unchanged since its last update
    // would receive the identical product matrix and (the SVD being
    // deterministic for a fixed seed) return the identical factor — so the
    // update is skipped outright. This keeps the trajectory bit-identical
    // while making converged modes free across the remaining sweeps.
    let mut version = [1u64, 1, 1];
    let mut updated_from = [(0u64, 0u64); 3];
    // Which factor versions the mode-2 scratch currently holds, and the
    // singular values of the last mode-2 SVD (for the final Λ₂ refresh).
    let mut w2_holds = (0u64, 0u64);
    let mut svd2_cache: Option<((u64, u64), Vec<f64>)> = None;

    for it in 0..config.max_iters {
        iterations = it + 1;
        for mode in 1..=3usize {
            let jn = [j1, j2, j3][mode - 1];
            let (ai, bi) = match mode {
                1 => (1, 2),
                2 => (0, 2),
                3 => (0, 1),
                _ => unreachable!(),
            };
            let inputs = (version[ai], version[bi]);
            if updated_from[mode - 1] == inputs {
                // Both inputs bitwise unchanged since this mode's last
                // update: recomputing would reproduce the current factor.
                continue;
            }
            let w = &mut w_scratch[mode - 1];
            // The mode-2 scratch may already hold this exact product from
            // the previous iteration's fit step; skip the TTM then.
            if mode != 2 || w2_holds != inputs {
                f.ttm_except_unfolded_into(mode, &factors[ai], &factors[bi], w)?;
                if mode == 2 {
                    w2_holds = inputs;
                }
            }
            let svd = truncated_svd(w, jn, &config.subspace)?;
            updated_from[mode - 1] = inputs;
            if mode == 2 {
                svd2_cache = Some((inputs, svd.singular_values));
            }
            if svd.u != factors[mode - 1] {
                factors[mode - 1] = svd.u;
                version[mode - 1] += 1;
            }
        }
        // Fit via ‖F−F̂‖² = ‖F‖² − ‖S‖² (factors orthonormal). The core norm
        // comes from S₍₂₎ = Y⁽²⁾ᵀ W₍₂₎; the mode-2 product is rebuilt into
        // the shared scratch only when Y⁽¹⁾ or Y⁽³⁾ actually moved since it
        // was last formed.
        if w2_holds != (version[0], version[2]) {
            f.ttm_except_unfolded_into(2, &factors[0], &factors[2], &mut w_scratch[1])?;
            w2_holds = (version[0], version[2]);
        }
        factors[1].matmul_tn_into(&w_scratch[1], &mut s2_scratch)?;
        let core_norm_sq = DenseTensor3::fold(2, &s2_scratch, (j1, j2, j3))?.frobenius_norm_sq();
        let resid_sq = (norm_f_sq - core_norm_sq).max(0.0);
        let fit = 1.0 - resid_sq.sqrt() / norm_f.max(f64::MIN_POSITIVE);
        fit_history.push(fit);
        let converged = (fit - prev_fit).abs() < config.fit_tol;
        prev_fit = fit;
        if converged {
            break;
        }
    }

    // --- Final mode-2 refresh: make Y⁽²⁾ and Λ₂ the exact singular pairs of
    // the final product matrix so Theorem 2 holds as tightly as possible.
    // The product and its SVD are reused from the sweep when the inputs are
    // bitwise unchanged (always true once the sweep reached a fixed point).
    if w2_holds != (version[0], version[2]) {
        f.ttm_except_unfolded_into(2, &factors[0], &factors[2], &mut w_scratch[1])?;
        w2_holds = (version[0], version[2]);
    }
    let lambda2 = match svd2_cache {
        Some((inputs, singular_values)) if inputs == w2_holds => singular_values,
        _ => {
            let svd2 = truncated_svd(&w_scratch[1], j2, &config.subspace)?;
            factors[1] = svd2.u;
            svd2.singular_values
        }
    };

    // --- Core from the final factors (Eq. 16). S₍₂₎ = Y⁽²⁾ᵀ W₍₂₎ reuses W₍₂₎.
    factors[1].matmul_tn_into(&w_scratch[1], &mut s2_scratch)?;
    let core = DenseTensor3::fold(2, &s2_scratch, (j1, j2, j3))?;
    let resid_sq = (norm_f_sq - core.frobenius_norm_sq()).max(0.0);
    let fit = 1.0 - resid_sq.sqrt() / norm_f.max(f64::MIN_POSITIVE);

    Ok(TuckerDecomposition {
        core,
        factors,
        lambda2,
        fit,
        iterations,
        fit_history,
    })
}

/// HOSVD factor for one mode: leading eigenvectors of the sparse unfolding's
/// outer Gram operator, computed without densifying the unfolding.
fn hosvd_factor(
    f: &SparseTensor3,
    mode: usize,
    k: usize,
    config: &TuckerConfig,
) -> Result<Matrix, LinAlgError> {
    let unfolding = f.unfold_csr(mode);
    let op = GramOp::outer(&unfolding).with_fused(config.fused_gram);
    let eigs = sym_eigs_topk(&op, k, &config.subspace)?;
    Ok(eigs.vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_linalg::qr::orthonormality_error;

    fn figure2_tensor() -> SparseTensor3 {
        let quads = [
            (0, 0, 0, 1.0),
            (0, 0, 1, 1.0),
            (1, 0, 1, 1.0),
            (2, 0, 1, 1.0),
            (0, 1, 0, 1.0),
            (1, 2, 2, 1.0),
            (2, 2, 2, 1.0),
        ];
        SparseTensor3::from_entries((3, 3, 3), &quads).unwrap()
    }

    fn default_config(dims: (usize, usize, usize)) -> TuckerConfig {
        TuckerConfig {
            core_dims: dims,
            max_iters: 30,
            fit_tol: 1e-10,
            subspace: SubspaceOptions::default(),
            fused_gram: true,
        }
    }

    #[test]
    fn full_rank_decomposition_is_exact() {
        let f = figure2_tensor();
        let config = default_config((3, 3, 3));
        let d = tucker_als(&f, &config).unwrap();
        assert!(
            d.fit > 1.0 - 1e-8,
            "full-rank fit should be ~1, got {}",
            d.fit
        );
        let recon = d.reconstruct().unwrap();
        assert!(recon.approx_eq(&f.to_dense(), 1e-7));
    }

    #[test]
    fn factors_are_orthonormal() {
        let f = figure2_tensor();
        let config = default_config((2, 3, 2));
        let d = tucker_als(&f, &config).unwrap();
        for (n, y) in d.factors.iter().enumerate() {
            assert!(
                orthonormality_error(y) < 1e-8,
                "factor {} not orthonormal",
                n + 1
            );
        }
    }

    #[test]
    fn paper_example_trimmed_decomposition() {
        // §IV-D uses J1 = J2 = 3, J3 = 2 on the Figure 2 tensor and reports
        // that F̂ stays close to F. Verify the shape of that claim.
        let f = figure2_tensor();
        let config = default_config((3, 3, 2));
        let d = tucker_als(&f, &config).unwrap();
        assert_eq!(d.core.dims(), (3, 3, 2));
        let recon = d.reconstruct().unwrap();
        let err = recon.sub(&f.to_dense()).unwrap().frobenius_norm();
        // The trimmed reconstruction must lose something but not much.
        assert!(err > 1e-9, "trimming J3 must be lossy here");
        assert!(err < f.frobenius_norm() * 0.5, "error {err} too large");
        // Residual identity: ‖F−F̂‖² = ‖F‖² − ‖S‖².
        let identity_err = (err * err - (f.frobenius_norm_sq() - d.core.frobenius_norm_sq())).abs();
        assert!(
            identity_err < 1e-8,
            "norm identity violated by {identity_err}"
        );
    }

    #[test]
    fn fit_matches_reconstruction_error() {
        let f = figure2_tensor();
        let config = default_config((2, 2, 2));
        let d = tucker_als(&f, &config).unwrap();
        let recon = d.reconstruct().unwrap();
        let err = recon.sub(&f.to_dense()).unwrap().frobenius_norm();
        let fit_direct = 1.0 - err / f.frobenius_norm();
        assert!((d.fit - fit_direct).abs() < 1e-8);
    }

    #[test]
    fn bigger_core_never_fits_worse() {
        let f = figure2_tensor();
        let small = tucker_als(&f, &default_config((1, 1, 1))).unwrap();
        let medium = tucker_als(&f, &default_config((2, 2, 2))).unwrap();
        let full = tucker_als(&f, &default_config((3, 3, 3))).unwrap();
        assert!(small.fit <= medium.fit + 1e-9);
        assert!(medium.fit <= full.fit + 1e-9);
    }

    #[test]
    fn lambda2_matches_core_row_norms() {
        // Theorem 2's engine: at the fixed point, S₍₂₎ has orthogonal rows
        // with norms λᵢ. After the final mode-2 refresh this holds exactly.
        let f = figure2_tensor();
        let d = tucker_als(&f, &default_config((3, 3, 2))).unwrap();
        let s2 = d.core.unfold(2);
        for (i, &l) in d.lambda2.iter().enumerate() {
            let row_norm: f64 = s2.row(i).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                (row_norm - l).abs() < 1e-8,
                "row {i}: ‖S₍₂₎ᵢ‖ = {row_norm} vs λ = {l}"
            );
        }
        // And the rows are mutually orthogonal.
        for i in 0..s2.rows() {
            for j in (i + 1)..s2.rows() {
                let dot: f64 = s2.row(i).iter().zip(s2.row(j)).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-8, "rows {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn sigma_from_core_equals_sigma_from_lambda2_at_convergence() {
        let f = figure2_tensor();
        let d = tucker_als(&f, &default_config((3, 3, 2))).unwrap();
        let a = d.sigma_from_core().unwrap();
        let b = d.sigma_from_lambda2();
        assert!(a.approx_eq(&b, 1e-7), "Theorem 2: Σ_core ≠ Σ_Λ₂");
    }

    #[test]
    fn reduction_ratio_config() {
        let cfg =
            TuckerConfig::from_reduction_ratios((3897, 3326, 2849), 50.0, 50.0, 50.0).unwrap();
        // The paper quotes 78 x 67 x 57 for Last.fm at c = 50.
        assert_eq!(cfg.core_dims, (78, 67, 57));
        assert!(TuckerConfig::from_reduction_ratios((10, 10, 10), 0.5, 1.0, 1.0).is_err());
        // Ratios can exceed the dimension: J clamps to 1.
        let tiny = TuckerConfig::from_reduction_ratios((3, 3, 3), 100.0, 100.0, 100.0).unwrap();
        assert_eq!(tiny.core_dims, (1, 1, 1));
    }

    #[test]
    fn zero_tensor_rejected() {
        let f = SparseTensor3::from_entries((2, 2, 2), &[]).unwrap();
        assert!(tucker_als(&f, &TuckerConfig::default()).is_err());
    }

    #[test]
    fn core_dims_clamped_to_tensor_dims() {
        let f = figure2_tensor();
        let config = default_config((10, 10, 10));
        let d = tucker_als(&f, &config).unwrap();
        assert_eq!(d.core.dims(), (3, 3, 3));
    }

    #[test]
    fn compressed_len_accounting() {
        let f = figure2_tensor();
        let d = tucker_als(&f, &default_config((2, 3, 2))).unwrap();
        // S: 2*3*2 = 12; Y1: 3x2, Y2: 3x3, Y3: 3x2 → 6+9+6 = 21.
        assert_eq!(d.compressed_len(), 12 + 21);
    }

    #[test]
    fn deterministic_given_seed() {
        let f = figure2_tensor();
        let config = default_config((2, 2, 2));
        let d1 = tucker_als(&f, &config).unwrap();
        let d2 = tucker_als(&f, &config).unwrap();
        assert_eq!(d1.fit, d2.fit);
        assert!(d1.factors[1].approx_eq(&d2.factors[1], 0.0));
    }

    #[test]
    fn fit_history_is_monotone_nondecreasing() {
        let f = figure2_tensor();
        let d = tucker_als(&f, &default_config((2, 2, 2))).unwrap();
        for w in d.fit_history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "ALS fit decreased: {:?}",
                d.fit_history
            );
        }
    }
}
