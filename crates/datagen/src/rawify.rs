//! Wraps a clean generated dataset in realistic crawl noise.
//!
//! Table II of the paper contrasts *raw* crawls against the *cleaned*
//! datasets. The raw layer adds exactly the artifacts the §VI-A pipeline is
//! designed to strip: system-generated tags, mixed-case duplicates of real
//! tags, and long tails of singleton users/tags/resources.

use cubelsi_folksonomy::{Folksonomy, FolksonomyBuilder, TagId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`rawify`].
#[derive(Debug, Clone)]
pub struct RawNoiseConfig {
    /// Fraction of assignments whose tag is re-emitted with scrambled case.
    pub case_mangle_rate: f64,
    /// Number of system-tag assignments to sprinkle (tags like
    /// `system:imported`).
    pub system_tag_assignments: usize,
    /// Number of singleton "drive-by" users, each contributing one
    /// assignment with a unique rare tag on a unique rare resource.
    pub singleton_users: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RawNoiseConfig {
    fn default() -> Self {
        RawNoiseConfig {
            case_mangle_rate: 0.08,
            system_tag_assignments: 200,
            singleton_users: 150,
            seed: 0x7a9,
        }
    }
}

const SYSTEM_TAGS: &[&str] = &["system:imported", "system:unfiled", "system:auto"];

/// Produces a noisy "raw crawl" superset of `clean`.
///
/// Every clean assignment is preserved (possibly with its tag's case
/// scrambled), and noise records are appended. Cleaning the result with the
/// §VI-A defaults recovers a dataset close to `clean`.
pub fn rawify(clean: &Folksonomy, config: &RawNoiseConfig) -> Folksonomy {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = FolksonomyBuilder::new();

    for a in clean.assignments() {
        let user = clean.user_name(a.user).to_owned();
        let resource = clean.resource_name(a.resource).to_owned();
        let tag = clean.tag_name(a.tag);
        let tag = if rng.gen::<f64>() < config.case_mangle_rate {
            mangle_case(tag, &mut rng)
        } else {
            tag.to_owned()
        };
        b.add(&user, &tag, &resource);
    }

    // System tags attached to existing users/resources.
    let n_users = clean.num_users().max(1);
    let n_resources = clean.num_resources().max(1);
    for _ in 0..config.system_tag_assignments {
        let u = rng.gen_range(0..n_users);
        let r = rng.gen_range(0..n_resources);
        let tag = SYSTEM_TAGS[rng.gen_range(0..SYSTEM_TAGS.len())];
        b.add(
            clean.user_name(cubelsi_folksonomy::UserId::from_index(u)),
            tag,
            clean.resource_name(cubelsi_folksonomy::ResourceId::from_index(r)),
        );
    }

    // Drive-by singletons: unique user + unique tag + unique resource.
    for i in 0..config.singleton_users {
        b.add(
            &format!("driveby{i:05}"),
            &format!("raretag{i:05}"),
            &format!("rareres{i:05}"),
        );
    }

    b.build()
}

fn mangle_case(tag: &str, rng: &mut StdRng) -> String {
    tag.chars()
        .map(|c| {
            if c.is_ascii_alphabetic() && rng.gen::<f64>() < 0.5 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

/// Returns `true` if the tag name looks system-generated (shared with the
/// cleaning default).
pub fn is_system_tag(f: &Folksonomy, t: TagId) -> bool {
    f.tag_name(t).starts_with("system:")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use cubelsi_folksonomy::{clean, CleaningConfig};

    fn clean_dataset() -> Folksonomy {
        generate(&GeneratorConfig {
            users: 40,
            resources: 30,
            concepts: 6,
            assignments: 3_000,
            seed: 5,
            ..Default::default()
        })
        .folksonomy
    }

    #[test]
    fn raw_is_a_noisy_superset() {
        let base = clean_dataset();
        let raw = rawify(&base, &RawNoiseConfig::default());
        assert!(raw.num_users() > base.num_users());
        assert!(raw.num_tags() > base.num_tags());
        assert!(raw.num_resources() > base.num_resources());
        assert!(raw.num_assignments() > base.num_assignments());
    }

    #[test]
    fn raw_contains_system_tags_and_singletons() {
        let base = clean_dataset();
        let raw = rawify(&base, &RawNoiseConfig::default());
        assert!(raw.tag_id("system:imported").is_some() || raw.tag_id("system:unfiled").is_some());
        assert!(raw.user_id("driveby00000").is_some());
        assert!(raw.tag_id("raretag00000").is_some());
    }

    #[test]
    fn cleaning_raw_removes_the_noise() {
        let base = clean_dataset();
        let raw = rawify(&base, &RawNoiseConfig::default());
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        // All singleton and system noise must be gone.
        assert!(cleaned.tag_id("system:imported").is_none());
        assert!(cleaned.user_id("driveby00000").is_none());
        // And the cleaned output must be close to the original in size:
        // cleaning also prunes genuinely rare entities of the base data,
        // so sizes can only shrink relative to base.
        assert!(report.cleaned.assignments <= raw.num_assignments());
        assert!(
            cleaned.num_assignments() * 10 >= base.num_assignments() * 5,
            "cleaning destroyed too much: {} of {}",
            cleaned.num_assignments(),
            base.num_assignments()
        );
        assert!(report.system_tag_assignments_removed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let base = clean_dataset();
        let a = rawify(&base, &RawNoiseConfig::default());
        let b = rawify(&base, &RawNoiseConfig::default());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn is_system_tag_predicate() {
        let base = clean_dataset();
        let raw = rawify(&base, &RawNoiseConfig::default());
        let sys = raw
            .tag_id("system:imported")
            .or(raw.tag_id("system:unfiled"));
        if let Some(t) = sys {
            assert!(is_system_tag(&raw, t));
        }
        let normal = TagId::from_index(0);
        let _ = is_system_tag(&raw, normal); // must not panic
    }
}
