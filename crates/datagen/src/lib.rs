//! Synthetic data generation for the CubeLSI experiments.
//!
//! The paper evaluates on crawls of Delicious, Bibsonomy and Last.fm, with
//! WordNet + the Jiang–Conrath (JCN) distance as semantic ground truth and
//! 16 human assessors grading 128 queries. None of those artifacts are
//! available offline, so this crate builds the closest synthetic
//! equivalents (each substitution is documented in `DESIGN.md` §4):
//!
//! * [`taxonomy`] — a WordNet-like IS-A hierarchy with per-synset
//!   information content, the exact JCN distance formula, and a lexicon
//!   featuring the phenomena of Table IV (synonym sets, polysemy, cognates,
//!   morphological variants, abbreviations);
//! * [`generator`] — a latent-concept folksonomy generator: resources carry
//!   concept mixtures, taggers carry interest profiles *and private
//!   vocabulary biases* (the tagger-context signal CubeLSI exploits), tags
//!   are drawn from the taxonomy's lexicon, plus uniform noise;
//! * [`mod@rawify`] — wraps a clean dataset in realistic crawl noise (system
//!   tags, case mangling, singleton entities) so the §VI-A cleaning
//!   pipeline has real work to do (Table II raw rows);
//! * [`presets`] — Delicious-, Bibsonomy- and Last.fm-shaped parameter sets
//!   with a `scale` knob, matching the cleaned-size *ratios* of Table II.
//!
//! Everything is deterministic given the configured seeds.

pub mod generator;
pub mod presets;
pub mod rawify;
pub mod taxonomy;

pub use generator::{generate, GeneratedDataset, GeneratorConfig, GroundTruth};
pub use presets::{
    all_presets, bibsonomy_like, delicious_like, huge_1m, lastfm_like, DatasetPreset,
};
pub use rawify::{rawify, RawNoiseConfig};
pub use taxonomy::{Lexicon, LexiconConfig, Taxonomy, TaxonomyConfig, Word, WordKind};
