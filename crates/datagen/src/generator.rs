//! The latent-concept folksonomy generator.
//!
//! The generative model mirrors the paper's account of how tagging happens
//! (§I, "Tags, Concepts and Aspects"): a tagger studies a resource,
//! identifies an *aspect* he cares about, discovers the *concept* the
//! resource exhibits under that aspect, and expresses it with one of the
//! concept's *tags*. Concretely:
//!
//! * each **concept** is anchored at a taxonomy synset and owns a pool of
//!   word forms (the synset's words plus its children's);
//! * each **resource** carries a sparse mixture over concepts;
//! * each **user** carries an interest profile over concepts *and a private
//!   per-concept word preference* — two users interested in the same
//!   concept systematically pick different words for it. This is the
//!   tagger-context signal that distinguishes CubeLSI from LSI;
//! * assignments sample user (Zipf activity) → concept (user profile) →
//!   resource (concept affinity × Zipf popularity) → word (user's word
//!   preference), with a configurable fraction of uniform noise.
//!
//! Everything the evaluation later needs — concept membership of tags,
//! resource–concept affinities, the taxonomy for JCN — is returned as
//! [`GroundTruth`].

use cubelsi_folksonomy::{Folksonomy, FolksonomyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::taxonomy::{Lexicon, LexiconConfig, Taxonomy, TaxonomyConfig};

/// Parameters of the generative model.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of users `|U|`.
    pub users: usize,
    /// Number of resources `|R|`.
    pub resources: usize,
    /// Number of latent concepts.
    pub concepts: usize,
    /// Target number of sampled assignments (before set-dedup).
    pub assignments: usize,
    /// Inclusive range of concepts per resource mixture.
    pub concepts_per_resource: (usize, usize),
    /// Inclusive range of concepts per user interest profile.
    pub concepts_per_user: (usize, usize),
    /// Fraction of assignments replaced by uniform noise.
    pub noise_rate: f64,
    /// Zipf exponent for user activity (0 = uniform).
    pub user_activity_zipf: f64,
    /// Zipf exponent for resource popularity (0 = uniform).
    pub resource_popularity_zipf: f64,
    /// Sharpness of per-user word preferences: probability mass ratio
    /// between a user's favourite word for a concept and the next one.
    /// 0.5 means the favourite is picked ~2x as often as the runner-up.
    pub word_preference_decay: f64,
    /// Taxonomy generation parameters.
    pub taxonomy: TaxonomyConfig,
    /// Lexicon generation parameters.
    pub lexicon: LexiconConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            users: 300,
            resources: 250,
            concepts: 20,
            assignments: 15_000,
            concepts_per_resource: (2, 4),
            concepts_per_user: (1, 2),
            noise_rate: 0.05,
            user_activity_zipf: 1.0,
            resource_popularity_zipf: 0.8,
            word_preference_decay: 0.4,
            taxonomy: TaxonomyConfig::default(),
            lexicon: LexiconConfig::default(),
            seed: 0xdeed,
        }
    }
}

/// The latent model behind a generated dataset — the oracle that replaces
/// WordNet and the human assessors of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The IS-A hierarchy with information content (for JCN).
    pub taxonomy: Taxonomy,
    /// Word forms over the taxonomy.
    pub lexicon: Lexicon,
    /// Concept → anchoring synset.
    pub concept_synsets: Vec<usize>,
    /// Concept → pool of lexicon word indexes.
    pub concept_words: Vec<Vec<usize>>,
    /// Tag id (dense, matches the folksonomy) → lexicon word index.
    pub tag_words: Vec<usize>,
    /// Tag id → concepts whose pools contain the tag's word.
    pub tag_concepts: Vec<Vec<usize>>,
    /// Resource id → normalized `(concept, weight)` mixture.
    pub resource_affinity: Vec<Vec<(usize, f64)>>,
    /// Resource id → per-concept established word subsets (the only words
    /// taggers apply to that resource; queries draw from full pools).
    pub resource_words: Vec<Vec<(usize, Vec<usize>)>>,
    /// User id → normalized `(concept, weight)` interest profile.
    pub user_interests: Vec<Vec<(usize, f64)>>,
}

impl GroundTruth {
    /// Total affinity of resource `r` for the given set of concepts.
    pub fn resource_relevance(&self, concepts: &[usize], resource: usize) -> f64 {
        self.resource_affinity[resource]
            .iter()
            .filter(|(c, _)| concepts.contains(c))
            .map(|(_, w)| w)
            .sum()
    }

    /// Ground-truth JCN distance between two tags (min over synsets).
    pub fn tag_jcn(&self, tag_a: usize, tag_b: usize) -> f64 {
        self.lexicon
            .jcn_between_words(&self.taxonomy, self.tag_words[tag_a], self.tag_words[tag_b])
    }

    /// `true` when both tags express at least one common concept.
    pub fn tags_share_concept(&self, tag_a: usize, tag_b: usize) -> bool {
        self.tag_concepts[tag_a]
            .iter()
            .any(|c| self.tag_concepts[tag_b].contains(c))
    }
}

/// A generated dataset plus its latent model.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The clean folksonomy (apply [`crate::rawify::rawify`] for a noisy raw layer).
    pub folksonomy: Folksonomy,
    /// The oracle used for evaluation.
    pub truth: GroundTruth,
}

impl GeneratedDataset {
    /// Rebinds the ground truth to a *derived* folksonomy — typically the
    /// output of [`cubelsi_folksonomy::clean`] — whose entity ids differ
    /// but whose entity *names* are preserved. The paper's experiments all
    /// run on cleaned corpora, so the oracle must follow the id remapping.
    ///
    /// # Panics
    /// Panics when `derived` contains a tag/resource/user name unknown to
    /// this dataset (derived corpora must be subsets).
    pub fn rebind(&self, derived: Folksonomy) -> GeneratedDataset {
        let truth = &self.truth;
        let mut tag_words = Vec::with_capacity(derived.num_tags());
        let mut tag_concepts = Vec::with_capacity(derived.num_tags());
        for t in 0..derived.num_tags() {
            let name = derived.tag_name(cubelsi_folksonomy::TagId::from_index(t));
            let w = truth
                .lexicon
                .lookup(name)
                .expect("derived tag name must exist in the lexicon");
            tag_words.push(w);
            let concepts: Vec<usize> = truth
                .concept_words
                .iter()
                .enumerate()
                .filter(|(_, pool)| pool.binary_search(&w).is_ok())
                .map(|(c, _)| c)
                .collect();
            tag_concepts.push(concepts);
        }
        let map_resource = |r: usize| {
            let name = derived.resource_name(cubelsi_folksonomy::ResourceId::from_index(r));
            self.folksonomy
                .resource_id(name)
                .expect("derived resource name must exist in the base dataset")
                .index()
        };
        let resource_affinity: Vec<Vec<(usize, f64)>> = (0..derived.num_resources())
            .map(|r| truth.resource_affinity[map_resource(r)].clone())
            .collect();
        let resource_words: Vec<Vec<(usize, Vec<usize>)>> = (0..derived.num_resources())
            .map(|r| truth.resource_words[map_resource(r)].clone())
            .collect();
        let user_interests: Vec<Vec<(usize, f64)>> = (0..derived.num_users())
            .map(|u| {
                let name = derived.user_name(cubelsi_folksonomy::UserId::from_index(u));
                let orig = self
                    .folksonomy
                    .user_id(name)
                    .expect("derived user name must exist in the base dataset");
                truth.user_interests[orig.index()].clone()
            })
            .collect();
        GeneratedDataset {
            folksonomy: derived,
            truth: GroundTruth {
                taxonomy: truth.taxonomy.clone(),
                lexicon: truth.lexicon.clone(),
                concept_synsets: truth.concept_synsets.clone(),
                concept_words: truth.concept_words.clone(),
                tag_words,
                tag_concepts,
                resource_affinity,
                resource_words,
                user_interests,
            },
        }
    }
}

/// Runs the generative model.
pub fn generate(config: &GeneratorConfig) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let taxonomy = Taxonomy::generate(&config.taxonomy, config.seed ^ 0x7a78);
    let lexicon = Lexicon::generate(&taxonomy, &config.lexicon, config.seed ^ 0x13ec);

    // --- Concept anchors: deeper synsets with non-empty word pools.
    let mut candidates: Vec<usize> = (1..taxonomy.len())
        .filter(|&s| taxonomy.depth(s) >= 1 && !lexicon.words_of_synset(s).is_empty())
        .collect();
    assert!(
        candidates.len() >= config.concepts,
        "taxonomy too small for {} concepts (have {} candidates)",
        config.concepts,
        candidates.len()
    );
    // Deterministic Fisher–Yates prefix.
    for i in 0..config.concepts {
        let j = rng.gen_range(i..candidates.len());
        candidates.swap(i, j);
    }
    let concept_synsets: Vec<usize> = candidates[..config.concepts].to_vec();

    // --- Concept word pools: own words + child-synset words.
    let concept_words: Vec<Vec<usize>> = concept_synsets
        .iter()
        .map(|&s| {
            let mut pool: Vec<usize> = lexicon.words_of_synset(s).to_vec();
            for child in (1..taxonomy.len()).filter(|&c| taxonomy.parent(c) == Some(s)) {
                pool.extend_from_slice(lexicon.words_of_synset(child));
            }
            pool.sort_unstable();
            pool.dedup();
            pool
        })
        .collect();

    // --- Resource mixtures.
    let concept_popularity = zipf_weights(config.concepts, 0.7);
    let resource_affinity: Vec<Vec<(usize, f64)>> = (0..config.resources)
        .map(|_| {
            let k = sample_range(&mut rng, config.concepts_per_resource)
                .min(config.concepts)
                .max(1);
            let mut chosen = sample_distinct_weighted(&mut rng, &concept_popularity, k);
            let mut weights: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 0.2).collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            // Sort by descending weight for readable ground truth.
            let mut mix: Vec<(usize, f64)> = chosen.drain(..).zip(weights).collect();
            mix.sort_by(|a, b| b.1.total_cmp(&a.1));
            mix
        })
        .collect();

    // --- Per-resource established vocabularies. A real resource only ever
    // carries the handful of words early taggers establish on it (people
    // copy visible tags), NOT the concept's whole pool — this is the
    // query/resource vocabulary gap that motivates concept-level matching
    // in the paper (§I: relevant resources may be "described by disjoint
    // sets of tags" from the query).
    let resource_words: Vec<Vec<(usize, Vec<usize>)>> = resource_affinity
        .iter()
        .map(|mix| {
            mix.iter()
                .map(|&(c, _)| {
                    let pool = &concept_words[c];
                    let take = rng.gen_range(1..=3usize).min(pool.len()).max(1);
                    let mut picked: Vec<usize> = Vec::with_capacity(take);
                    while picked.len() < take {
                        let w = pool[rng.gen_range(0..pool.len())];
                        if !picked.contains(&w) {
                            picked.push(w);
                        }
                    }
                    picked.sort_unstable();
                    (c, picked)
                })
                .collect()
        })
        .collect();

    // --- Per-concept resource pools (resource index + sampling weight).
    let resource_popularity = zipf_weights(config.resources, config.resource_popularity_zipf);
    let mut concept_resources: Vec<Vec<(usize, f64)>> = vec![Vec::new(); config.concepts];
    for (r, mix) in resource_affinity.iter().enumerate() {
        for &(c, w) in mix {
            concept_resources[c].push((r, w * resource_popularity[r]));
        }
    }
    let concept_resource_cdfs: Vec<Cdf> = concept_resources
        .iter()
        .map(|pool| Cdf::new(pool.iter().map(|&(_, w)| w)))
        .collect();

    // --- User profiles and private word preferences.
    let mut user_interests: Vec<Vec<(usize, f64)>> = Vec::with_capacity(config.users);
    // For each (user, concept-in-profile): a permutation of the concept's
    // word pool; geometric decay makes early words strongly preferred.
    let mut user_word_prefs: Vec<Vec<Vec<usize>>> = Vec::with_capacity(config.users);
    for _ in 0..config.users {
        let k = sample_range(&mut rng, config.concepts_per_user)
            .min(config.concepts)
            .max(1);
        let chosen = sample_distinct_weighted(&mut rng, &concept_popularity, k);
        let mut weights: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 0.2).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let prefs: Vec<Vec<usize>> = chosen
            .iter()
            .map(|&c| {
                let mut pool = concept_words[c].clone();
                // Private shuffle = private vocabulary bias.
                for i in (1..pool.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    pool.swap(i, j);
                }
                pool
            })
            .collect();
        user_interests.push(chosen.into_iter().zip(weights).collect());
        user_word_prefs.push(prefs);
    }
    let user_activity = zipf_weights(config.users, config.user_activity_zipf);
    let user_cdf = Cdf::new(user_activity.iter().copied());

    // --- Assignment sampling.
    let mut builder = FolksonomyBuilder::new();
    // Pre-intern entities so ids are dense and in generation order.
    for u in 0..config.users {
        builder.intern_user(&format!("user{u:05}"));
    }
    for r in 0..config.resources {
        builder.intern_resource(&format!("res{r:05}"));
    }
    let decay = config.word_preference_decay.clamp(0.01, 0.99);
    for _ in 0..config.assignments {
        let u = user_cdf.sample(&mut rng);
        if rng.gen::<f64>() < config.noise_rate {
            // Tagging noise. Most mis-tagging reuses the live vocabulary
            // (the wrong real tag on the wrong resource); only a small
            // fraction invents out-of-vocabulary words. Without this split
            // the noise manufactures hundreds of junk tags that no real
            // folksonomy's cleaned corpus would contain.
            let w = if rng.gen::<f64>() < 0.25 {
                rng.gen_range(0..lexicon.len())
            } else {
                let c = rng.gen_range(0..config.concepts);
                let pool = &concept_words[c];
                pool[rng.gen_range(0..pool.len())]
            };
            let r = rng.gen_range(0..config.resources);
            builder.add(
                &format!("user{u:05}"),
                &lexicon.word(w).name.clone(),
                &format!("res{r:05}"),
            );
            continue;
        }
        // Concept from the user's profile.
        let profile = &user_interests[u];
        let ci = sample_weighted_pairs(&mut rng, profile);
        let concept = profile[ci].0;
        // Resource from the concept's pool (skip empty pools as noise).
        let pool_cdf = &concept_resource_cdfs[concept];
        let r = match pool_cdf.is_empty() {
            true => rng.gen_range(0..config.resources),
            false => concept_resources[concept][pool_cdf.sample(&mut rng)].0,
        };
        // Word: the user's private preference order, restricted to the
        // words established on this resource for this concept (taggers
        // overwhelmingly reuse visible tags).
        let prefs = &user_word_prefs[u][ci];
        let established = resource_words[r]
            .iter()
            .find(|(c, _)| *c == concept)
            .map(|(_, ws)| ws.as_slice())
            .unwrap_or(&[]);
        let restricted: Vec<usize> = prefs
            .iter()
            .copied()
            .filter(|w| established.binary_search(w).is_ok())
            .collect();
        let w = if restricted.is_empty() {
            prefs[sample_geometric(&mut rng, decay, prefs.len())]
        } else {
            restricted[sample_geometric(&mut rng, decay, restricted.len())]
        };
        builder.add(
            &format!("user{u:05}"),
            &lexicon.word(w).name.clone(),
            &format!("res{r:05}"),
        );
    }
    let folksonomy = builder.build();

    // --- Dense ground-truth arrays aligned with the final tag ids.
    let mut tag_words = Vec::with_capacity(folksonomy.num_tags());
    let mut tag_concepts = Vec::with_capacity(folksonomy.num_tags());
    for t in 0..folksonomy.num_tags() {
        let name = folksonomy.tag_name(cubelsi_folksonomy::TagId::from_index(t));
        let w = lexicon
            .lookup(name)
            .expect("every generated tag is a lexicon word");
        tag_words.push(w);
        let concepts: Vec<usize> = concept_words
            .iter()
            .enumerate()
            .filter(|(_, pool)| pool.binary_search(&w).is_ok())
            .map(|(c, _)| c)
            .collect();
        tag_concepts.push(concepts);
    }

    GeneratedDataset {
        folksonomy,
        truth: GroundTruth {
            taxonomy,
            lexicon,
            concept_synsets,
            concept_words,
            tag_words,
            tag_concepts,
            resource_affinity,
            resource_words,
            user_interests,
        },
    }
}

/// Unnormalized Zipf weights `1/(i+1)^s`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

fn sample_range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if hi > lo {
        rng.gen_range(lo..=hi)
    } else {
        lo
    }
}

/// Samples `k` distinct indexes with probability ∝ `weights`.
fn sample_distinct_weighted(rng: &mut StdRng, weights: &[f64], k: usize) -> Vec<usize> {
    let mut w = weights.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(weights.len()) {
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut idx = w.len() - 1;
        for (i, &wi) in w.iter().enumerate() {
            if target < wi {
                idx = i;
                break;
            }
            target -= wi;
        }
        out.push(idx);
        w[idx] = 0.0;
    }
    out
}

fn sample_weighted_pairs(rng: &mut StdRng, pairs: &[(usize, f64)]) -> usize {
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen::<f64>() * total;
    for (i, &(_, w)) in pairs.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    pairs.len() - 1
}

/// Truncated geometric sample in `0..n`.
fn sample_geometric(rng: &mut StdRng, decay: f64, n: usize) -> usize {
    debug_assert!(n > 0);
    let mut i = 0;
    while i + 1 < n && rng.gen::<f64>() < decay {
        i += 1;
    }
    i
}

/// Cumulative distribution over arbitrary non-negative weights with
/// binary-search sampling.
struct Cdf {
    cumulative: Vec<f64>,
}

impl Cdf {
    fn new(weights: impl Iterator<Item = f64>) -> Cdf {
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        Cdf { cumulative }
    }

    fn is_empty(&self) -> bool {
        self.cumulative.last().is_none_or(|&t| t <= 0.0)
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty CDF");
        let target = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            users: 40,
            resources: 30,
            concepts: 6,
            assignments: 2_000,
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let ds = generate(&small_config());
        let f = &ds.folksonomy;
        assert_eq!(f.num_users(), 40);
        assert_eq!(f.num_resources(), 30);
        assert!(f.num_tags() > 10, "tags: {}", f.num_tags());
        assert!(f.num_assignments() > 500, "|Y| = {}", f.num_assignments());
        // Set semantics keeps |Y| at or below the sample count.
        assert!(f.num_assignments() <= 2_000);
    }

    #[test]
    fn ground_truth_is_aligned_with_tag_ids() {
        let ds = generate(&small_config());
        let f = &ds.folksonomy;
        let t = &ds.truth;
        assert_eq!(t.tag_words.len(), f.num_tags());
        assert_eq!(t.tag_concepts.len(), f.num_tags());
        for tag in 0..f.num_tags() {
            let name = f.tag_name(cubelsi_folksonomy::TagId::from_index(tag));
            assert_eq!(
                t.lexicon.word(t.tag_words[tag]).name,
                name,
                "tag {tag} misaligned"
            );
        }
    }

    #[test]
    fn resource_mixtures_are_normalized() {
        let ds = generate(&small_config());
        for mix in &ds.truth.resource_affinity {
            assert!(!mix.is_empty());
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "mixture sums to {total}");
            for w in mix.windows(2) {
                assert!(w[0].1 >= w[1].1, "mixture must be sorted by weight");
            }
        }
    }

    #[test]
    fn user_profiles_are_normalized() {
        let ds = generate(&small_config());
        for profile in &ds.truth.user_interests {
            let total: f64 = profile.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9);
            let mut seen: Vec<usize> = profile.iter().map(|&(c, _)| c).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), profile.len(), "duplicate concepts in profile");
        }
    }

    #[test]
    fn concept_words_nonempty_and_within_lexicon() {
        let ds = generate(&small_config());
        for pool in &ds.truth.concept_words {
            assert!(!pool.is_empty());
            for &w in pool {
                assert!(w < ds.truth.lexicon.len());
            }
        }
    }

    #[test]
    fn most_assignments_use_concept_tags() {
        // Uniform noise creates many *distinct* off-concept tag names, but
        // assignment volume must be dominated by concept vocabulary (the
        // noise rate is 5%; geometric word preferences concentrate the
        // rest on concept pools).
        let ds = generate(&small_config());
        let conceptual = ds
            .folksonomy
            .assignments()
            .iter()
            .filter(|a| !ds.truth.tag_concepts[a.tag.index()].is_empty())
            .count();
        let total = ds.folksonomy.num_assignments();
        assert!(
            conceptual * 10 > total * 7,
            "{conceptual}/{total} assignments use concept tags"
        );
    }

    #[test]
    fn relevance_oracle_behaves() {
        let ds = generate(&small_config());
        let t = &ds.truth;
        // For any resource, full-mixture relevance is ~1 and disjoint
        // concepts give 0.
        let mix = &t.resource_affinity[0];
        let all: Vec<usize> = mix.iter().map(|&(c, _)| c).collect();
        assert!((t.resource_relevance(&all, 0) - 1.0).abs() < 1e-9);
        let absent: Vec<usize> = (0..ds.truth.concept_words.len())
            .filter(|c| !all.contains(c))
            .collect();
        assert_eq!(t.resource_relevance(&absent, 0), 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.folksonomy.stats(), b.folksonomy.stats());
        assert_eq!(a.truth.tag_words, b.truth.tag_words);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let mut cfg = small_config();
        cfg.seed = 43;
        let b = generate(&cfg);
        assert_ne!(
            a.folksonomy.num_assignments(),
            b.folksonomy.num_assignments()
        );
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        let flat = zipf_weights(3, 0.0);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn cdf_sampling_respects_zero_weights() {
        let cdf = Cdf::new([0.0, 1.0, 0.0].into_iter());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(cdf.sample(&mut rng), 1);
        }
        assert!(Cdf::new(std::iter::empty()).is_empty());
        assert!(Cdf::new([0.0].into_iter()).is_empty());
    }

    #[test]
    fn geometric_sampler_prefers_early_indices() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..2000 {
            counts[sample_geometric(&mut rng, 0.5, 5)] += 1;
        }
        assert!(counts[0] > counts[2]);
        assert!(counts[1] > counts[3]);
    }
}
