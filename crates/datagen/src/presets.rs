//! Dataset presets shaped after the paper's three evaluation corpora.
//!
//! Table II (cleaned rows) gives the target shapes:
//!
//! | dataset   | |U|    | |T|   | |R|    | |Y|       | character |
//! |-----------|--------|-------|--------|-----------|-----------|
//! | Delicious | 28,939 | 7,342 | 4,118  | 1,357,238 | many users, dense |
//! | Bibsonomy | 732    | 4,702 | 35,708 | 258,347   | few users, many resources |
//! | Last.fm   | 3,897  | 3,326 | 2,849  | 335,782   | balanced |
//!
//! Running full-size Tucker on a laptop-scale CI box is possible but slow,
//! so presets expose a `scale ∈ (0, 1]` knob that multiplies entity counts
//! while preserving the *ratios* — the property the evaluation shapes
//! depend on. `scale = 1.0` reproduces the cleaned Table II sizes.

use crate::generator::GeneratorConfig;
use crate::taxonomy::{LexiconConfig, TaxonomyConfig};

/// A named dataset preset.
#[derive(Debug, Clone)]
pub struct DatasetPreset {
    /// Human-readable name ("delicious", "bibsonomy", "lastfm").
    pub name: &'static str,
    /// Generator parameters at the requested scale.
    pub config: GeneratorConfig,
}

fn scaled(n: usize, scale: f64, floor: usize) -> usize {
    ((n as f64 * scale).round() as usize).max(floor)
}

/// Delicious-like: a large, active user base annotating relatively few
/// bookmarks very densely.
pub fn delicious_like(scale: f64, seed: u64) -> DatasetPreset {
    let concepts = scaled(60, scale.powf(0.25), 10);
    DatasetPreset {
        name: "delicious",
        config: GeneratorConfig {
            users: scaled(28_939, scale, 30),
            resources: scaled(4_118, scale, 25),
            concepts,
            assignments: scaled(1_357_238, scale, 4_000),
            concepts_per_resource: (2, 4),
            concepts_per_user: (1, 2),
            noise_rate: 0.06,
            user_activity_zipf: 1.1,
            resource_popularity_zipf: 0.9,
            word_preference_decay: 0.4,
            taxonomy: TaxonomyConfig {
                synsets: (concepts * 14).max(120),
                max_children: 5,
                ic_increment: (0.5, 2.0),
            },
            lexicon: LexiconConfig::default(),
            seed,
        },
    }
}

/// Bibsonomy-like: a small community tagging a very large publication
/// collection sparsely.
pub fn bibsonomy_like(scale: f64, seed: u64) -> DatasetPreset {
    let concepts = scaled(45, scale.powf(0.25), 10);
    DatasetPreset {
        name: "bibsonomy",
        config: GeneratorConfig {
            // The user floor is generous relative to the paper's U:R ratio:
            // below ~60 users no tagger-community structure exists for any
            // method to exploit, which voids the experiment, so tiny scales
            // trade ratio fidelity for signal.
            users: scaled(732, scale, 60),
            resources: scaled(35_708, scale, 40),
            concepts,
            assignments: scaled(258_347, scale, 3_000),
            concepts_per_resource: (2, 3),
            concepts_per_user: (1, 2),
            noise_rate: 0.08,
            user_activity_zipf: 0.9,
            resource_popularity_zipf: 0.7,
            word_preference_decay: 0.4,
            taxonomy: TaxonomyConfig {
                synsets: (concepts * 14).max(120),
                max_children: 4,
                ic_increment: (0.5, 2.0),
            },
            lexicon: LexiconConfig::default(),
            seed,
        },
    }
}

/// Last.fm-like: balanced users/tags/resources with strong popularity skew
/// (hit tracks attract most tags).
pub fn lastfm_like(scale: f64, seed: u64) -> DatasetPreset {
    let concepts = scaled(40, scale.powf(0.25), 10);
    DatasetPreset {
        name: "lastfm",
        config: GeneratorConfig {
            users: scaled(3_897, scale, 25),
            resources: scaled(2_849, scale, 25),
            concepts,
            assignments: scaled(335_782, scale, 3_500),
            concepts_per_resource: (2, 4),
            concepts_per_user: (1, 2),
            noise_rate: 0.05,
            user_activity_zipf: 1.2,
            resource_popularity_zipf: 1.1,
            word_preference_decay: 0.45,
            taxonomy: TaxonomyConfig {
                synsets: (concepts * 14).max(120),
                max_children: 5,
                ic_increment: (0.5, 2.0),
            },
            lexicon: LexiconConfig::default(),
            seed,
        },
    }
}

/// Million-resource stress preset: no Table II counterpart — this is the
/// shape the compressed posting format exists for. At `scale = 1.0` it
/// generates 1.2 M resources under ~6 M assignments, so posting lists run
/// to hundreds of thousands of entries and the hot index footprint (not
/// the model build) dominates memory. Tag diversity is kept moderate so
/// per-concept lists stay long — the worst case for resident set, the
/// best case for delta-packed ids.
pub fn huge_1m(scale: f64, seed: u64) -> DatasetPreset {
    let concepts = scaled(48, scale.powf(0.25), 10);
    DatasetPreset {
        name: "huge_1m",
        config: GeneratorConfig {
            users: scaled(40_000, scale, 30),
            resources: scaled(1_200_000, scale, 50),
            concepts,
            assignments: scaled(6_000_000, scale, 5_000),
            concepts_per_resource: (2, 4),
            concepts_per_user: (1, 2),
            noise_rate: 0.05,
            user_activity_zipf: 1.0,
            resource_popularity_zipf: 0.8,
            word_preference_decay: 0.4,
            taxonomy: TaxonomyConfig {
                synsets: (concepts * 14).max(120),
                max_children: 5,
                ic_increment: (0.5, 2.0),
            },
            lexicon: LexiconConfig::default(),
            seed,
        },
    }
}

/// All three presets at the same scale and seed (for the per-dataset
/// experiment loops). `huge_1m` is deliberately excluded: the experiment
/// loops reproduce Table II, while the stress preset exists for the
/// serving/memory benchmarks.
pub fn all_presets(scale: f64, seed: u64) -> Vec<DatasetPreset> {
    vec![
        delicious_like(scale, seed),
        bibsonomy_like(scale, seed.wrapping_add(1)),
        lastfm_like(scale, seed.wrapping_add(2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn presets_have_distinct_shapes() {
        let d = delicious_like(0.01, 1).config;
        let b = bibsonomy_like(0.01, 1).config;
        let l = lastfm_like(0.01, 1).config;
        // Delicious: users dominate resources.
        assert!(d.users > d.resources);
        // Bibsonomy: resources dominate users.
        assert!(b.resources > b.users);
        // Last.fm: roughly balanced (within 2x).
        assert!(l.users < l.resources * 2 && l.resources < l.users * 2);
    }

    #[test]
    fn full_scale_matches_table2() {
        let d = delicious_like(1.0, 1).config;
        assert_eq!(d.users, 28_939);
        assert_eq!(d.resources, 4_118);
        assert_eq!(d.assignments, 1_357_238);
        let b = bibsonomy_like(1.0, 1).config;
        assert_eq!(b.resources, 35_708);
        let l = lastfm_like(1.0, 1).config;
        assert_eq!(l.users, 3_897);
    }

    #[test]
    fn tiny_scale_still_generates() {
        for preset in all_presets(0.005, 99) {
            let ds = generate(&preset.config);
            assert!(ds.folksonomy.num_assignments() > 100, "{}", preset.name);
            assert!(ds.folksonomy.num_tags() > 5, "{}", preset.name);
        }
    }

    /// The stress preset must actually be million-scale at full size —
    /// this is the guard the ISSUE acceptance references — while a scaled
    /// copy stays CI-sized and generates the same *shape* (resources
    /// dominating users, long per-concept lists).
    #[test]
    fn huge_preset_is_million_scale_and_ci_scalable() {
        let full = huge_1m(1.0, 7).config;
        assert!(full.resources >= 1_000_000, "stress preset must cover 1M+");
        assert!(full.assignments >= 4 * full.resources);
        assert!(full.resources > full.users);

        let small = huge_1m(0.0002, 7);
        assert_eq!(small.name, "huge_1m");
        assert!(small.config.resources <= 1_000);
        let ds = generate(&small.config);
        assert!(ds.folksonomy.num_resources() > 100);
        assert!(ds.folksonomy.num_assignments() > 500);
    }

    #[test]
    fn floors_protect_degenerate_scales() {
        let d = delicious_like(1e-9, 1).config;
        assert!(d.users >= 30);
        assert!(d.resources >= 25);
        assert!(d.concepts >= 8);
    }
}
