//! A synthetic WordNet substitute: an IS-A hierarchy with information
//! content, the Jiang–Conrath distance, and a lexicon of word forms.
//!
//! The paper's Table III evaluates tag-distance accuracy against WordNet
//! using the JCN measure
//! `JCN(t₁, t₂) = IC(t₁) + IC(t₂) − 2·IC(LCS(t₁, t₂))`,
//! where `IC` is information content and `LCS` the least common subsumer.
//! This module provides the same interface over a generated taxonomy, so
//! the folksonomy generator and the evaluation share one latent semantic
//! model — exactly the role WordNet plays for real tags.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters for [`Taxonomy::generate`].
#[derive(Debug, Clone)]
pub struct TaxonomyConfig {
    /// Total number of synsets to grow (including the root).
    pub synsets: usize,
    /// Maximum children per synset.
    pub max_children: usize,
    /// Information-content increment per child edge, drawn uniformly from
    /// this range. Children are always more specific (higher IC).
    pub ic_increment: (f64, f64),
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        TaxonomyConfig {
            synsets: 200,
            max_children: 5,
            ic_increment: (0.5, 2.0),
        }
    }
}

#[derive(Debug, Clone)]
struct Synset {
    parent: Option<u32>,
    depth: u32,
    ic: f64,
}

/// A rooted IS-A hierarchy with information content per synset.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    synsets: Vec<Synset>,
}

impl Taxonomy {
    /// Grows a random tree of `config.synsets` synsets breadth-first.
    pub fn generate(config: &TaxonomyConfig, seed: u64) -> Taxonomy {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.synsets.max(1);
        let mut synsets = Vec::with_capacity(n);
        synsets.push(Synset {
            parent: None,
            depth: 0,
            ic: 0.0,
        });
        // The root always branches into `max_children` top-level categories
        // (like WordNet's unique beginners), so distinct branches exist.
        let mut frontier: Vec<u32> = Vec::new();
        let top = config.max_children.max(2).min(n.saturating_sub(1));
        for _ in 0..top {
            let (lo, hi) = config.ic_increment;
            let inc = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            let id = synsets.len() as u32;
            synsets.push(Synset {
                parent: Some(0),
                depth: 1,
                ic: inc,
            });
            frontier.push(id);
        }
        while synsets.len() < n {
            if frontier.is_empty() {
                // Degenerate config (max_children = 0): chain off the root.
                frontier.push(0);
            }
            let pick = rng.gen_range(0..frontier.len());
            let parent = frontier.swap_remove(pick);
            let nchildren = rng.gen_range(1..=config.max_children.max(1));
            for _ in 0..nchildren {
                if synsets.len() >= n {
                    break;
                }
                let (lo, hi) = config.ic_increment;
                let inc = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                let id = synsets.len() as u32;
                synsets.push(Synset {
                    parent: Some(parent),
                    depth: synsets[parent as usize].depth + 1,
                    ic: synsets[parent as usize].ic + inc,
                });
                frontier.push(id);
            }
        }
        Taxonomy { synsets }
    }

    /// Number of synsets.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    /// `true` when the taxonomy has no synsets (never true after generate).
    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// Information content of a synset.
    pub fn ic(&self, synset: usize) -> f64 {
        self.synsets[synset].ic
    }

    /// Depth of a synset (root = 0).
    pub fn depth(&self, synset: usize) -> usize {
        self.synsets[synset].depth as usize
    }

    /// Parent of a synset, if not the root.
    pub fn parent(&self, synset: usize) -> Option<usize> {
        self.synsets[synset].parent.map(|p| p as usize)
    }

    /// Least common subsumer of two synsets (walk the deeper one up).
    pub fn lcs(&self, a: usize, b: usize) -> usize {
        let (mut x, mut y) = (a, b);
        while self.synsets[x].depth > self.synsets[y].depth {
            x = self.synsets[x].parent.expect("non-root has parent") as usize;
        }
        while self.synsets[y].depth > self.synsets[x].depth {
            y = self.synsets[y].parent.expect("non-root has parent") as usize;
        }
        while x != y {
            x = self.synsets[x].parent.expect("hit root without meeting") as usize;
            y = self.synsets[y].parent.expect("hit root without meeting") as usize;
        }
        x
    }

    /// Jiang–Conrath distance between two synsets:
    /// `IC(a) + IC(b) − 2·IC(LCS(a, b))`. Zero iff `a == b` is not
    /// guaranteed in general JCN, but holds here because IC is strictly
    /// increasing along edges.
    pub fn jcn(&self, a: usize, b: usize) -> f64 {
        let l = self.lcs(a, b);
        self.ic(a) + self.ic(b) - 2.0 * self.ic(l)
    }
}

/// How a word form relates to its synset group — the correlation types
/// showcased in Table IV of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordKind {
    /// The canonical lemma of a synset.
    Base,
    /// An additional synonym of the same synset.
    Synonym,
    /// A cross-language cognate (e.g. "dictionary" / "dictionnaire").
    Cognate,
    /// An inflection or derivation (e.g. "quote" / "quotes" / "quotation").
    MorphVariant,
    /// An abbreviation (e.g. "advertisement" / "ad").
    Abbreviation,
}

/// A word form in the lexicon.
#[derive(Debug, Clone)]
pub struct Word {
    /// Surface form (unique within the lexicon).
    pub name: String,
    /// Synsets this word can denote; more than one ⇒ polysemy.
    pub synsets: Vec<usize>,
    /// Relation of this form to its group's base lemma.
    pub kind: WordKind,
    /// Index of the base word of this form's group (self for `Base`).
    pub group: usize,
}

/// Parameters for [`Lexicon::generate`].
#[derive(Debug, Clone)]
pub struct LexiconConfig {
    /// Extra synonyms per synset beyond the base lemma, inclusive range.
    pub synonyms_per_synset: (usize, usize),
    /// Probability that a word also attaches to a second synset (polysemy).
    pub polysemy_rate: f64,
    /// Probability a synset additionally gets a cognate form.
    pub cognate_rate: f64,
    /// Probability a synset additionally gets a morphological variant.
    pub morph_rate: f64,
    /// Probability a synset additionally gets an abbreviation.
    pub abbrev_rate: f64,
}

impl Default for LexiconConfig {
    fn default() -> Self {
        LexiconConfig {
            synonyms_per_synset: (1, 3),
            polysemy_rate: 0.12,
            cognate_rate: 0.08,
            morph_rate: 0.12,
            abbrev_rate: 0.05,
        }
    }
}

/// The word store over a [`Taxonomy`].
#[derive(Debug, Clone)]
pub struct Lexicon {
    words: Vec<Word>,
    by_name: HashMap<String, usize>,
    synset_words: Vec<Vec<usize>>,
}

impl Lexicon {
    /// Generates word forms for every non-root synset of `taxonomy`.
    pub fn generate(taxonomy: &Taxonomy, config: &LexiconConfig, seed: u64) -> Lexicon {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lex = Lexicon {
            words: Vec::new(),
            by_name: HashMap::new(),
            synset_words: vec![Vec::new(); taxonomy.len()],
        };
        let mut namer = PseudoWordGen::new(seed ^ 0x776f_7264); // "word"
        for synset in 1..taxonomy.len() {
            let base_name = namer.fresh(&mut rng, &lex.by_name);
            let base_idx = lex.push_word(Word {
                name: base_name.clone(),
                synsets: vec![synset],
                kind: WordKind::Base,
                group: 0, // fixed up below
            });
            lex.words[base_idx].group = base_idx;

            let (lo, hi) = config.synonyms_per_synset;
            let extra = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            for _ in 0..extra {
                let name = namer.fresh(&mut rng, &lex.by_name);
                lex.push_word(Word {
                    name,
                    synsets: vec![synset],
                    kind: WordKind::Synonym,
                    group: base_idx,
                });
            }
            if rng.gen::<f64>() < config.cognate_rate {
                let name = namer.derive_unique(&base_name, "cognate", &mut rng, &lex.by_name);
                lex.push_word(Word {
                    name,
                    synsets: vec![synset],
                    kind: WordKind::Cognate,
                    group: base_idx,
                });
            }
            if rng.gen::<f64>() < config.morph_rate {
                let name = namer.derive_unique(&base_name, "morph", &mut rng, &lex.by_name);
                lex.push_word(Word {
                    name,
                    synsets: vec![synset],
                    kind: WordKind::MorphVariant,
                    group: base_idx,
                });
            }
            if rng.gen::<f64>() < config.abbrev_rate {
                let name = namer.derive_unique(&base_name, "abbrev", &mut rng, &lex.by_name);
                lex.push_word(Word {
                    name,
                    synsets: vec![synset],
                    kind: WordKind::Abbreviation,
                    group: base_idx,
                });
            }
        }
        // Polysemy pass: attach some words to a second random synset.
        let n_words = lex.words.len();
        for w in 0..n_words {
            if rng.gen::<f64>() < config.polysemy_rate {
                let other = rng.gen_range(1..taxonomy.len());
                if !lex.words[w].synsets.contains(&other) {
                    lex.words[w].synsets.push(other);
                    lex.synset_words[other].push(w);
                }
            }
        }
        lex
    }

    fn push_word(&mut self, word: Word) -> usize {
        let idx = self.words.len();
        self.by_name.insert(word.name.clone(), idx);
        for &s in &word.synsets {
            self.synset_words[s].push(idx);
        }
        self.words.push(word);
        idx
    }

    /// Number of word forms.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the lexicon is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word by index.
    pub fn word(&self, idx: usize) -> &Word {
        &self.words[idx]
    }

    /// Word index by surface form.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Word indexes attached to a synset.
    pub fn words_of_synset(&self, synset: usize) -> &[usize] {
        &self.synset_words[synset]
    }

    /// Iterator over all words.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Word)> {
        self.words.iter().enumerate()
    }

    /// JCN distance between two *words*: the minimum over all synset pairs
    /// (the standard treatment of polysemous forms).
    pub fn jcn_between_words(&self, taxonomy: &Taxonomy, a: usize, b: usize) -> f64 {
        let mut best = f64::INFINITY;
        for &sa in &self.words[a].synsets {
            for &sb in &self.words[b].synsets {
                best = best.min(taxonomy.jcn(sa, sb));
            }
        }
        best
    }
}

/// Deterministic pronounceable pseudo-word generator.
struct PseudoWordGen {
    counter: u64,
}

impl PseudoWordGen {
    fn new(_seed: u64) -> Self {
        PseudoWordGen { counter: 0 }
    }

    /// A fresh base word not colliding with `taken`.
    fn fresh(&mut self, rng: &mut StdRng, taken: &HashMap<String, usize>) -> String {
        const CONSONANTS: &[&str] = &[
            "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st", "tr",
            "pl",
        ];
        const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou", "ea"];
        loop {
            let syllables = rng.gen_range(2..=3);
            let mut name = String::new();
            for _ in 0..syllables {
                name.push_str(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
                name.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
            }
            if !taken.contains_key(&name) {
                return name;
            }
            // Extremely unlikely long-run collision: extend deterministically.
            self.counter += 1;
            let candidate = format!("{name}{}", self.counter);
            if !taken.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// A derived form of `base` according to `flavor`, unique in `taken`.
    fn derive_unique(
        &mut self,
        base: &str,
        flavor: &str,
        rng: &mut StdRng,
        taken: &HashMap<String, usize>,
    ) -> String {
        let candidates: Vec<String> = match flavor {
            "cognate" => vec![
                format!("{base}que"),
                format!("{base}ija"),
                format!("{base}eux"),
                format!("{}o", base.trim_end_matches(['a', 'e', 'i', 'o', 'u'])),
            ],
            "morph" => vec![
                format!("{base}s"),
                format!("{base}ing"),
                format!("{base}ation"),
                format!("{base}ed"),
            ],
            "abbrev" => {
                let cut = base.len().clamp(2, 3);
                vec![base[..cut].to_string(), format!("{}.", &base[..cut])]
            }
            _ => vec![format!("{base}x")],
        };
        let start = rng.gen_range(0..candidates.len());
        for off in 0..candidates.len() {
            let c = &candidates[(start + off) % candidates.len()];
            if !taken.contains_key(c) {
                return c.clone();
            }
        }
        // All flavored candidates taken: extend with a counter.
        loop {
            self.counter += 1;
            let c = format!("{}{}", candidates[start], self.counter);
            if !taken.contains_key(&c) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_taxonomy() -> Taxonomy {
        Taxonomy::generate(
            &TaxonomyConfig {
                synsets: 50,
                max_children: 3,
                ic_increment: (0.5, 2.0),
            },
            7,
        )
    }

    #[test]
    fn taxonomy_structure_is_a_tree() {
        let t = small_taxonomy();
        assert_eq!(t.len(), 50);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.depth(0), 0);
        for s in 1..t.len() {
            let p = t.parent(s).expect("non-root synset has a parent");
            assert!(p < s, "parents precede children in generation order");
            assert_eq!(t.depth(s), t.depth(p) + 1);
            assert!(t.ic(s) > t.ic(p), "IC must increase with specificity");
        }
    }

    #[test]
    fn lcs_properties() {
        let t = small_taxonomy();
        for s in 0..t.len() {
            assert_eq!(t.lcs(s, s), s, "LCS(x, x) = x");
            assert_eq!(t.lcs(s, 0), 0, "LCS with the root is the root");
        }
        // Symmetry on a sample of pairs.
        for a in (0..t.len()).step_by(7) {
            for b in (0..t.len()).step_by(11) {
                assert_eq!(t.lcs(a, b), t.lcs(b, a));
            }
        }
        // LCS of a child and its parent is the parent.
        for s in 1..t.len() {
            let p = t.parent(s).unwrap();
            assert_eq!(t.lcs(s, p), p);
        }
    }

    #[test]
    fn jcn_is_a_semimetric() {
        let t = small_taxonomy();
        for a in (0..t.len()).step_by(5) {
            assert_eq!(t.jcn(a, a), 0.0, "JCN(x, x) = 0");
            for b in (0..t.len()).step_by(9) {
                let d = t.jcn(a, b);
                assert!(d >= 0.0, "JCN must be non-negative");
                assert!((d - t.jcn(b, a)).abs() < 1e-12, "JCN must be symmetric");
            }
        }
    }

    #[test]
    fn siblings_are_closer_than_strangers_on_average() {
        let t = small_taxonomy();
        // Collect sibling pairs and their JCN.
        let mut sibling_sum = 0.0;
        let mut sibling_n = 0usize;
        for a in 1..t.len() {
            for b in (a + 1)..t.len() {
                if t.parent(a) == t.parent(b) {
                    sibling_sum += t.jcn(a, b);
                    sibling_n += 1;
                }
            }
        }
        // Random far pairs: leaves under different root children.
        let mut far_sum = 0.0;
        let mut far_n = 0usize;
        for a in 1..t.len() {
            for b in (a + 1)..t.len() {
                if t.lcs(a, b) == 0 && t.depth(a) >= 2 && t.depth(b) >= 2 {
                    far_sum += t.jcn(a, b);
                    far_n += 1;
                }
            }
        }
        assert!(sibling_n > 0 && far_n > 0);
        assert!(
            sibling_sum / (sibling_n as f64) < far_sum / (far_n as f64),
            "sibling JCN should be below cross-branch JCN"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = Taxonomy::generate(&TaxonomyConfig::default(), 3);
        let b = Taxonomy::generate(&TaxonomyConfig::default(), 3);
        assert_eq!(a.len(), b.len());
        for s in 0..a.len() {
            assert_eq!(a.parent(s), b.parent(s));
            assert_eq!(a.ic(s), b.ic(s));
        }
    }

    #[test]
    fn lexicon_covers_every_synset() {
        let t = small_taxonomy();
        let lex = Lexicon::generate(&t, &LexiconConfig::default(), 11);
        for s in 1..t.len() {
            assert!(
                !lex.words_of_synset(s).is_empty(),
                "synset {s} has no words"
            );
        }
        assert!(lex.len() >= t.len() - 1);
    }

    #[test]
    fn word_names_are_unique_and_lookupable() {
        let t = small_taxonomy();
        let lex = Lexicon::generate(&t, &LexiconConfig::default(), 11);
        let mut seen = std::collections::HashSet::new();
        for (idx, w) in lex.iter() {
            assert!(seen.insert(w.name.clone()), "duplicate word {}", w.name);
            assert_eq!(lex.lookup(&w.name), Some(idx));
        }
        assert_eq!(lex.lookup("definitely-not-a-word"), None);
    }

    #[test]
    fn synonym_groups_share_synsets() {
        let t = small_taxonomy();
        let lex = Lexicon::generate(&t, &LexiconConfig::default(), 11);
        for (_, w) in lex.iter() {
            if w.kind != WordKind::Base {
                let base = lex.word(w.group);
                assert_eq!(base.kind, WordKind::Base);
                // Primary synset is shared with the base lemma.
                assert_eq!(w.synsets[0], base.synsets[0]);
            }
        }
    }

    #[test]
    fn special_forms_appear_with_generous_rates() {
        let t = Taxonomy::generate(
            &TaxonomyConfig {
                synsets: 300,
                ..Default::default()
            },
            5,
        );
        let cfg = LexiconConfig {
            synonyms_per_synset: (1, 2),
            polysemy_rate: 0.2,
            cognate_rate: 0.5,
            morph_rate: 0.5,
            abbrev_rate: 0.5,
        };
        let lex = Lexicon::generate(&t, &cfg, 13);
        let count = |k: WordKind| lex.iter().filter(|(_, w)| w.kind == k).count();
        assert!(count(WordKind::Synonym) > 0);
        assert!(count(WordKind::Cognate) > 0);
        assert!(count(WordKind::MorphVariant) > 0);
        assert!(count(WordKind::Abbreviation) > 0);
        let polysemous = lex.iter().filter(|(_, w)| w.synsets.len() > 1).count();
        assert!(polysemous > 0, "expected polysemous words");
    }

    #[test]
    fn word_jcn_uses_min_over_synsets() {
        let t = small_taxonomy();
        let lex = Lexicon::generate(&t, &LexiconConfig::default(), 11);
        // Words in the same synset have distance 0.
        for s in 1..t.len() {
            let ws = lex.words_of_synset(s);
            if ws.len() >= 2 {
                assert_eq!(lex.jcn_between_words(&t, ws[0], ws[1]), 0.0);
                return;
            }
        }
        panic!("no synset with >= 2 words in test lexicon");
    }
}
