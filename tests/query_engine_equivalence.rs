//! Property-style equivalence tests for the pruned top-k query engine:
//! over randomized corpora (via `cubelsi-datagen`), a **four-way**
//! bitwise equivalence must hold — the exhaustive reference path, the
//! MaxScore per-posting path ([`PruningStrategy::MaxScore`], the PR-1
//! engine kept selectable as the reference pruned path), the default
//! block-max path ([`PruningStrategy::BlockMax`]), and the compressed
//! decode-and-admit path ([`PruningStrategy::CompressedBlockMax`]) must
//! return *exactly* the same ranked list — scores (bit-for-bit), order,
//! and tie-breaks — for hard and soft concept assignments and
//! k ∈ {1, 5, all}.
//!
//! This is the correctness contract that makes the pruning optimizations
//! deployable: they are pure speedups, never approximations.

use cubelsi::core::{
    ConceptAssignment, ConceptIndex, ConceptModel, PruningStrategy, QueryEngine, RankedResource,
    SoftConceptModel, SoftConfig,
};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::{Folksonomy, TagId};
use cubelsi::linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every pruned strategy, checked against the exhaustive path in turn.
const STRATEGIES: [PruningStrategy; 3] = [
    PruningStrategy::MaxScore,
    PruningStrategy::BlockMax,
    PruningStrategy::CompressedBlockMax,
];

fn random_corpus(seed: u64, users: usize, resources: usize, assignments: usize) -> Folksonomy {
    generate(&GeneratorConfig {
        users,
        resources,
        concepts: 8,
        assignments,
        seed,
        ..Default::default()
    })
    .folksonomy
}

/// A random hard assignment — equivalence must hold for *any* concept
/// model, so there is no need to run the full distillation pipeline.
fn random_hard_model(rng: &mut StdRng, num_tags: usize, num_concepts: usize) -> ConceptModel {
    let assignments: Vec<usize> = (0..num_tags)
        .map(|_| rng.gen_range(0..num_concepts))
        .collect();
    ConceptModel::from_assignments(assignments, 1.0)
}

/// A random soft assignment built from a random spectral-like embedding.
fn random_soft_model(rng: &mut StdRng, num_tags: usize, num_concepts: usize) -> SoftConceptModel {
    let d = 3;
    let embedding = Matrix::from_fn(num_tags, d, |_, _| rng.gen::<f64>());
    let centroids = Matrix::from_fn(num_concepts, d, |_, _| rng.gen::<f64>());
    SoftConceptModel::from_embedding(&embedding, &centroids, &SoftConfig::default())
}

fn random_query(rng: &mut StdRng, num_tags: usize) -> Vec<TagId> {
    let len = rng.gen_range(1usize..=4);
    (0..len)
        .map(|_| TagId::from_index(rng.gen_range(0..num_tags)))
        .collect()
}

fn assert_identical(pruned: &[RankedResource], exact: &[RankedResource], context: &str) {
    assert_eq!(
        pruned.len(),
        exact.len(),
        "result length differs: {context}"
    );
    for (i, (p, e)) in pruned.iter().zip(exact.iter()).enumerate() {
        assert_eq!(
            p.resource, e.resource,
            "resource at rank {i} differs: {context}"
        );
        assert_eq!(
            p.score.to_bits(),
            e.score.to_bits(),
            "score at rank {i} differs ({} vs {}): {context}",
            p.score,
            e.score
        );
    }
}

/// Three-way check: exhaustive ≡ MaxScore ≡ block-max, for every query
/// and k, on the sequential and the batched path.
fn check_engine(
    engine: &mut QueryEngine,
    model: &dyn ConceptAssignment,
    seed: u64,
    num_tags: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_resources = engine.index().num_resources();
    let queries: Vec<Vec<TagId>> = (0..40).map(|_| random_query(&mut rng, num_tags)).collect();
    // k = 1, 5, all-matches (0), and a k larger than the corpus.
    for &k in &[1usize, 5, 0, num_resources + 7] {
        // The exhaustive ground truth is strategy-independent.
        let exact: Vec<Vec<RankedResource>> = queries
            .iter()
            .map(|q| engine.search_tags_exact(model, q, k))
            .collect();
        for strategy in STRATEGIES {
            engine.set_strategy(strategy);
            let mut session = engine.session();
            let mut out = Vec::new();
            for (qi, q) in queries.iter().enumerate() {
                engine.search_tags_with(&mut session, model, q, k, &mut out);
                assert_identical(
                    &out,
                    &exact[qi],
                    &format!("{strategy:?} seed={seed} k={k} query#{qi} {q:?}"),
                );
            }
            // The batched path must agree query-for-query as well.
            let batch = engine.search_batch(model, &queries, k);
            for (qi, _) in queries.iter().enumerate() {
                assert_identical(
                    &batch[qi],
                    &exact[qi],
                    &format!("batch {strategy:?} seed={seed} k={k} query#{qi}"),
                );
            }
        }
    }
}

#[test]
fn pruned_paths_equal_exact_path_hard_assignments() {
    for (seed, users, resources, assignments) in [
        (1u64, 20, 15, 400),
        (2, 50, 80, 2_500),
        (3, 80, 200, 6_000),
        (4, 10, 300, 3_000),
    ] {
        let f = random_corpus(seed, users, resources, assignments);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for num_concepts in [2usize, 6, 16] {
            let model = random_hard_model(&mut rng, f.num_tags(), num_concepts);
            let mut engine = QueryEngine::new(ConceptIndex::build(&f, &model));
            check_engine(
                &mut engine,
                &model,
                seed * 31 + num_concepts as u64,
                f.num_tags(),
            );
        }
    }
}

#[test]
fn pruned_paths_equal_exact_path_soft_assignments() {
    for (seed, users, resources, assignments) in [
        (11u64, 30, 40, 1_200),
        (12, 60, 120, 4_000),
        (13, 15, 250, 2_000),
    ] {
        let f = random_corpus(seed, users, resources, assignments);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for num_concepts in [3usize, 8] {
            let model = random_soft_model(&mut rng, f.num_tags(), num_concepts);
            let mut engine = QueryEngine::new(ConceptIndex::build(&f, &model));
            check_engine(
                &mut engine,
                &model,
                seed * 17 + num_concepts as u64,
                f.num_tags(),
            );
        }
    }
}

#[test]
fn pruned_paths_equal_exact_on_long_multi_block_lists() {
    // Few concepts over many resources: posting lists hundreds of entries
    // long, so the block-max loop crosses many BLOCK_LEN boundaries and
    // the skip case (block max below threshold) actually fires at small k.
    for (seed, users, resources, assignments) in [(21u64, 5, 1_500, 12_000), (22, 12, 800, 20_000)]
    {
        let f = random_corpus(seed, users, resources, assignments);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB10C);
        for num_concepts in [2usize, 4] {
            let model = random_hard_model(&mut rng, f.num_tags(), num_concepts);
            let mut engine = QueryEngine::new(ConceptIndex::build(&f, &model));
            check_engine(
                &mut engine,
                &model,
                seed * 13 + num_concepts as u64,
                f.num_tags(),
            );
        }
    }
}

#[test]
fn single_term_fast_path_handles_impact_ties() {
    // Many resources tagged identically produce equal impacts — the
    // single-term prefix cut must break ties exactly like the full sort.
    use cubelsi::folksonomy::FolksonomyBuilder;
    let mut b = FolksonomyBuilder::new();
    for r in 0..20 {
        b.add("u1", "same", &format!("r{r}"));
    }
    // A couple of resources with extra tags → different norms.
    b.add("u2", "other", "r3");
    b.add("u2", "other", "r7");
    let f = b.build();
    let model = ConceptModel::from_assignments(vec![0, 1], 1.0);
    let mut engine = QueryEngine::new(ConceptIndex::build(&f, &model));
    let tag = f.tag_id("same").unwrap();
    for strategy in STRATEGIES {
        engine.set_strategy(strategy);
        for k in 1..=21 {
            let exact = engine.search_tags_exact(&model, &[tag], k);
            let pruned = engine.search_tags(&model, &[tag], k);
            assert_identical(&pruned, &exact, &format!("{strategy:?} tie corpus k={k}"));
        }
    }
}

/// Regression: non-finite weights through the raw `search_weighted`
/// entry point must route to the exact reference path. Before the fix,
/// NaN slipped past both guards (`NaN < 0.0` is false, `NaN != 0.0` is
/// true), poisoned the dense accumulators and the query norm, and the
/// pruned results silently diverged from
/// `ConceptIndex::query_weighted_concepts` — this test fails on that
/// code. It also exercises the NaN-safe ranking comparator: ±inf
/// weights produce NaN final scores inside `rank_exact`'s sort, which
/// previously handed `sort_unstable_by` a non-total order.
#[test]
fn non_finite_weights_fall_back_to_exact() {
    let f = random_corpus(61, 25, 30, 900);
    let mut rng = StdRng::seed_from_u64(61);
    let model = random_hard_model(&mut rng, f.num_tags(), 4);
    let hostile_weight_sets: Vec<Vec<(u32, f64)>> = vec![
        vec![(0, f64::NAN)],
        vec![(0, 0.7), (1, f64::NAN)],
        vec![(0, f64::INFINITY)],
        vec![(0, 0.5), (1, f64::INFINITY), (2, 0.25)],
        vec![(0, f64::NEG_INFINITY)],
        vec![(0, f64::NAN), (1, f64::INFINITY), (2, f64::NEG_INFINITY)],
        vec![(0, 0.5), (1, -0.0), (2, f64::NAN)],
    ];
    for strategy in STRATEGIES {
        let engine = QueryEngine::with_strategy(ConceptIndex::build(&f, &model), strategy);
        let mut session = engine.session();
        let mut out = Vec::new();
        for (wi, terms) in hostile_weight_sets.iter().enumerate() {
            engine.search_weighted(&mut session, terms, 0, &mut out);
            let reference: Vec<(usize, f64)> =
                terms.iter().map(|&(l, w)| (l as usize, w)).collect();
            let exact = engine.index().query_weighted_concepts(&reference, 0);
            assert_identical(
                &out,
                &exact,
                &format!("{strategy:?} hostile weights #{wi} {terms:?}"),
            );
            // The session must not be poisoned for the next (finite)
            // query: a normal search right after must still match exact.
            engine.search_weighted(&mut session, &[(0, 0.5), (1, 0.25)], 5, &mut out);
            let clean = engine
                .index()
                .query_weighted_concepts(&[(0, 0.5), (1, 0.25)], 5);
            assert_identical(&out, &clean, &format!("{strategy:?} post-hostile #{wi}"));
        }
    }
}
