//! Property-based tests for the linear-algebra substrate, driven through
//! the public facade. These complement the unit tests inside
//! `cubelsi-linalg` with randomized coverage of algebraic laws.

use cubelsi::linalg::qr::orthonormality_error;
use cubelsi::linalg::subspace::SubspaceOptions;
use cubelsi::linalg::{householder_qr, jacobi_eigen, jacobi_svd, truncated_svd, CsrMatrix, Matrix};
use proptest::prelude::*;

/// Strategy: a dense matrix with entries in [-3, 3].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: dims in 1..=6 plus a matching buffer.
fn sized_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| matrix_strategy(r, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5), c in matrix_strategy(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix_strategy(3, 4), b in matrix_strategy(4, 3), c in matrix_strategy(4, 3)) {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_is_involutive(a in sized_matrix()) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn transpose_reverses_products(a in matrix_strategy(3, 4), b in matrix_strategy(4, 5)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-10));
    }

    #[test]
    fn frobenius_norm_is_subadditive(a in matrix_strategy(4, 4), b in matrix_strategy(4, 4)) {
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn qr_reconstructs_random_tall_matrices(a in matrix_strategy(6, 3)) {
        let (q, r) = householder_qr(&a).unwrap();
        prop_assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-8));
        prop_assert!(orthonormality_error(&q) < 1e-8);
    }

    #[test]
    fn jacobi_eigen_reconstructs_symmetric(a in matrix_strategy(4, 4)) {
        let sym = a.add(&a.transpose()).unwrap().scale(0.5);
        let e = jacobi_eigen(&sym, 1e-12).unwrap();
        let lambda = Matrix::from_diag(&e.values);
        let recon = e.vectors.matmul(&lambda).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(recon.approx_eq(&sym, 1e-7));
    }

    #[test]
    fn jacobi_svd_reconstructs_and_orders(a in sized_matrix()) {
        let svd = jacobi_svd(&a).unwrap();
        prop_assert!(svd.reconstruct().unwrap().approx_eq(&a, 1e-7));
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &svd.singular_values {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn truncated_svd_error_bounded_by_discarded_sigma(a in matrix_strategy(5, 4)) {
        let full = jacobi_svd(&a).unwrap();
        let k = 2;
        let trunc = truncated_svd(&a, k, &SubspaceOptions::default()).unwrap();
        let err = trunc.reconstruct().unwrap().sub(&a).unwrap().frobenius_norm();
        // ‖A − A_k‖_F = √(σ_{k+1}² + …) for the optimal rank-k approx.
        let optimal: f64 = full.singular_values.iter().skip(k).map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!(err <= optimal + 1e-5, "err {err} vs optimal {optimal}");
    }

    #[test]
    fn csr_round_trips_and_matches_dense_ops(
        triples in proptest::collection::vec((0usize..5, 0usize..4, -2.0f64..2.0), 0..20),
        x in proptest::collection::vec(-1.0f64..1.0, 4)
    ) {
        let sp = CsrMatrix::from_triples(5, 4, &triples).unwrap();
        let dense = sp.to_dense();
        prop_assert_eq!(sp.matvec(&x).unwrap(), dense.matvec(&x).unwrap());
        let spt = sp.transpose().to_dense();
        prop_assert!(spt.approx_eq(&dense.transpose(), 0.0));
    }
}
