//! Adversarial persistence tests for the shard manifest: every way a
//! manifest or its shard artifacts can be damaged, swapped, or lied
//! about must yield a typed [`PersistError`] — and **never a partial
//! engine** ([`shard::load_source`] is all-or-nothing).

use cubelsi::core::shard::{self, LoadMode};
use cubelsi::core::{persist, CubeLsi, CubeLsiConfig, PersistError};
use cubelsi::folksonomy::store::figure2_example;
use cubelsi::folksonomy::Folksonomy;
use std::path::{Path, PathBuf};

fn built() -> (Folksonomy, CubeLsi) {
    let f = figure2_example();
    let cfg = CubeLsiConfig {
        core_dims: Some((3, 3, 2)),
        num_concepts: Some(2),
        sigma: Some(1.0),
        max_als_iters: 30,
        als_fit_tol: 1e-10,
        ..Default::default()
    };
    let model = CubeLsi::build(&f, &cfg).unwrap();
    (f, model)
}

/// A fresh temp dir with a valid 3-shard manifest inside.
fn sharded_fixture(tag: &str) -> (PathBuf, PathBuf) {
    let (f, model) = built();
    let dir = std::env::temp_dir().join(format!(
        "cubelsi-shard-adversarial-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("model.shards");
    shard::save_sharded(&manifest, &model, &f, 3).unwrap();
    (dir, manifest)
}

fn load_both_modes(path: &Path) -> [Result<(), PersistError>; 2] {
    [LoadMode::Owned, LoadMode::ZeroCopy].map(|mode| shard::load_source(path, mode).map(|_| ()))
}

#[test]
fn valid_fixture_loads() {
    let (dir, manifest) = sharded_fixture("ok");
    for result in load_both_modes(&manifest) {
        result.unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_manifest_is_typed_error() {
    let (dir, manifest) = sharded_fixture("trunc");
    let bytes = std::fs::read(&manifest).unwrap();
    // Cut at every prefix class: inside the magic, the header, an entry,
    // and the trailing checksum.
    for cut in [0usize, 4, 10, 14, 20, bytes.len() - 3, bytes.len() - 1] {
        let cut = cut.min(bytes.len() - 1);
        std::fs::write(&manifest, &bytes[..cut]).unwrap();
        for result in load_both_modes(&manifest) {
            match result {
                Err(
                    PersistError::Truncated { .. }
                    | PersistError::BadMagic
                    | PersistError::Malformed { .. },
                ) => {}
                other => panic!("cut at {cut}: expected typed truncation error, got {other:?}"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_shard_count_is_typed_error() {
    let (dir, manifest) = sharded_fixture("count");
    let bytes = std::fs::read(&manifest).unwrap();
    // The count field is at offset 12 (magic 8 + version 4). Patching it
    // without re-recording the trailing CRC must fail the checksum;
    // patching it *with* a fixed-up CRC must fail structurally (entries
    // disagree with the declared count).
    for (count, fix_crc) in [(2u32, false), (2, true), (4, true), (0, true), (4096, true)] {
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&count.to_le_bytes());
        if fix_crc {
            let body = bad.len() - 4;
            let crc = persist::crc32(&bad[..body]);
            let end = bad.len();
            bad[end - 4..].copy_from_slice(&crc.to_le_bytes());
        }
        std::fs::write(&manifest, &bad).unwrap();
        for result in load_both_modes(&manifest) {
            match result {
                Err(
                    PersistError::Malformed { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Truncated { .. },
                ) => {}
                other => panic!("count={count} fix_crc={fix_crc}: got {other:?}"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_artifact_checksum_mismatch_is_typed_error() {
    let (dir, manifest) = sharded_fixture("crc");
    // Flip one byte deep inside shard 1's artifact payload. The manifest
    // CRC no longer matches the file, so the load must fail before the
    // artifact is even parsed.
    let shard_path = dir.join("model.shards.shard1");
    let mut bytes = std::fs::read(&shard_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&shard_path, &bytes).unwrap();
    for result in load_both_modes(&manifest) {
        match result {
            Err(PersistError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, 1, "the failing shard ordinal is reported");
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_entry_checksum_mismatch_is_typed_error() {
    let (dir, manifest) = sharded_fixture("entrycrc");
    // Corrupt shard 0's recorded CRC inside the manifest and re-record
    // the manifest's own trailing checksum: the manifest is then
    // self-consistent but disagrees with the (intact) artifact.
    let mut bytes = std::fs::read(&manifest).unwrap();
    // Entry 0 starts at offset 20 (magic 8 + version 4 + count 4 +
    // scheme 4); name length (4) + name + file_len (8) precede its CRC.
    let name_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    let crc_at = 20 + 4 + name_len + 8;
    bytes[crc_at] ^= 0xFF;
    let body = bytes.len() - 4;
    let crc = persist::crc32(&bytes[..body]);
    let end = bytes.len();
    bytes[end - 4..].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&manifest, &bytes).unwrap();
    for result in load_both_modes(&manifest) {
        match result {
            Err(PersistError::ChecksumMismatch { section, .. }) => assert_eq!(section, 0),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_artifact_is_typed_error() {
    let (dir, manifest) = sharded_fixture("missing");
    std::fs::remove_file(dir.join("model.shards.shard2")).unwrap();
    for result in load_both_modes(&manifest) {
        match result {
            Err(PersistError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
            }
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_artifact_is_typed_error() {
    let (dir, manifest) = sharded_fixture("shardtrunc");
    let shard_path = dir.join("model.shards.shard0");
    let bytes = std::fs::read(&shard_path).unwrap();
    std::fs::write(&shard_path, &bytes[..bytes.len() / 2]).unwrap();
    for result in load_both_modes(&manifest) {
        match result {
            Err(PersistError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swapped_shard_artifacts_are_rejected() {
    // Both artifacts are individually valid and CRC-recorded, but the
    // manifest order is authoritative: shard 0's slot holding shard 1's
    // artifact means resources are indexed by the wrong shard.
    let (dir, manifest) = sharded_fixture("swap");
    let manifest_bytes = std::fs::read(&manifest).unwrap();
    let p0 = dir.join("model.shards.shard0");
    let p1 = dir.join("model.shards.shard1");
    let b0 = std::fs::read(&p0).unwrap();
    let b1 = std::fs::read(&p1).unwrap();
    std::fs::write(&p0, &b1).unwrap();
    std::fs::write(&p1, &b0).unwrap();
    // Re-record the swapped files' checksums in the manifest so the
    // mismatch is *semantic*, not a checksum failure.
    let mut m = shard::decode_manifest(&manifest_bytes).unwrap();
    m.entries.swap(0, 1);
    let names_back: Vec<String> = vec!["model.shards.shard0".into(), "model.shards.shard1".into()];
    m.entries[0].file_name = names_back[0].clone();
    m.entries[1].file_name = names_back[1].clone();
    std::fs::write(&manifest, shard::encode_manifest(&m)).unwrap();
    for result in load_both_modes(&manifest) {
        match result {
            Err(PersistError::Shard { .. }) => {}
            other => panic!("expected Shard mismatch, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsupported_manifest_version_is_typed_error() {
    let (dir, manifest) = sharded_fixture("version");
    let mut bytes = std::fs::read(&manifest).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&manifest, &bytes).unwrap();
    for result in load_both_modes(&manifest) {
        match result {
            Err(PersistError::UnsupportedVersion { found, .. }) => assert_eq!(found, 99),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
