//! Integration tests for the soft-clustering extension (paper footnote 5):
//! the full retrieval stack running on soft tag→concept memberships.

use cubelsi::core::build_tensor;
use cubelsi::core::{
    pairwise_distances_from_embedding, tag_embedding, ConceptIndex, CubeLsiConfig, QueryEngine,
    SigmaSource, SoftConceptModel, SoftConfig,
};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::{clean, CleaningConfig, TagId};
use cubelsi::tensor::tucker_als;

fn setup() -> (
    cubelsi::datagen::GeneratedDataset,
    SoftConceptModel,
    ConceptIndex,
) {
    // Fixture seed chosen so the generated corpus yields well-separated
    // concepts under the workspace's deterministic RNG (the assertions
    // below are corpus-dependent; a poorly-clustered draw can leave most
    // concepts with idf 0).
    let ds = generate(&GeneratorConfig {
        users: 70,
        resources: 50,
        concepts: 6,
        assignments: 5_000,
        seed: 900,
        ..Default::default()
    });
    let (cleaned, _) = clean(&ds.folksonomy, &CleaningConfig::default());
    let ds = ds.rebind(cleaned);
    let f = &ds.folksonomy;

    let config = CubeLsiConfig {
        core_dims: Some((12, 12, 12)),
        num_concepts: Some(6),
        max_als_iters: 6,
        seed: 11,
        ..Default::default()
    };
    let tensor = build_tensor(f).unwrap();
    let tucker_cfg = config.tucker_config(tensor.dims()).unwrap();
    let decomp = tucker_als(&tensor, &tucker_cfg).unwrap();
    let z = tag_embedding(&decomp, SigmaSource::Lambda2).unwrap();
    let distances = pairwise_distances_from_embedding(&z);
    let soft = SoftConceptModel::distill(
        &distances,
        &config.spectral_config(),
        &SoftConfig::default(),
    )
    .unwrap();
    let index = ConceptIndex::build(f, &soft);
    (ds, soft, index)
}

#[test]
fn soft_index_serves_queries() {
    // Soft assignments served through the pruned top-k engine on one
    // reused session — the production soft-query path.
    let (ds, soft, index) = setup();
    let f = &ds.folksonomy;
    let engine = QueryEngine::new(index);
    let mut session = engine.session();
    let mut hits = Vec::new();
    let mut answered = 0;
    for t in 0..f.num_tags().min(30) {
        engine.search_tags_with(&mut session, &soft, &[TagId::from_index(t)], 10, &mut hits);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            assert!(h.score.is_finite() && h.score > 0.0);
        }
        let exact = engine.search_tags_exact(&soft, &[TagId::from_index(t)], 10);
        assert_eq!(hits, exact, "pruned soft path must match exact (tag {t})");
        if !hits.is_empty() {
            answered += 1;
        }
    }
    assert!(answered > 10, "only {answered} queries answered");
}

#[test]
fn soft_memberships_are_normalized_distributions() {
    let (_, soft, _) = setup();
    for t in 0..soft.num_tags() {
        let m = soft.memberships_of(t);
        assert!(!m.is_empty(), "tag {t} has no concept");
        let sum: f64 = m.iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9, "tag {t} weights sum to {sum}");
        for w in m.windows(2) {
            assert!(w[0].1 >= w[1].1, "memberships must be sorted by weight");
        }
    }
}

#[test]
fn hardened_model_agrees_with_top_membership() {
    let (_, soft, _) = setup();
    let hard = soft.harden();
    for t in 0..soft.num_tags() {
        assert_eq!(hard.concept_of(t), soft.memberships_of(t)[0].0 as usize);
    }
}

#[test]
fn soft_widens_or_matches_hard_candidate_sets() {
    // A soft query spreads over at least the concepts of the hard query,
    // so its candidate set is a superset for single-tag queries.
    let (ds, soft, soft_index) = setup();
    let f = &ds.folksonomy;
    let hard = soft.harden();
    let hard_index = ConceptIndex::build(f, &hard);
    let mut widened = 0usize;
    for t in 0..f.num_tags() {
        let q = [TagId::from_index(t)];
        let soft_hits = soft_index.query_tag_ids(&soft, &q, 0).len();
        let hard_hits = hard_index.query_tag_ids(&hard, &q, 0).len();
        // Not a strict superset in general (idf re-weighting can zero a
        // concept), but polysemy must *broaden* retrieval somewhere.
        if soft_hits > hard_hits {
            widened += 1;
        }
    }
    assert!(
        soft.num_polysemous() == 0 || widened > 0,
        "{} polysemous tags but no query widened",
        soft.num_polysemous()
    );
}
