//! Cross-crate integration tests: the full CubeLSI pipeline and all five
//! baselines driven end-to-end on generated corpora.

use cubelsi::baselines::{
    cubesim::CubeSimConfig, BowRanker, CubeLsiRanker, CubeSim, CubeSimMode, FolkRank,
    FolkRankConfig, FreqRanker, LsiConfig, LsiRanker, Ranker,
};
use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::datagen::{generate, GeneratedDataset, GeneratorConfig};
use cubelsi::eval::{generate_workload, ndcg_at, WorkloadConfig};
use cubelsi::folksonomy::{clean, CleaningConfig, TagId};

fn corpus() -> GeneratedDataset {
    let ds = generate(&GeneratorConfig {
        users: 80,
        resources: 60,
        concepts: 8,
        assignments: 6_000,
        seed: 404,
        ..Default::default()
    });
    let (cleaned, _) = clean(&ds.folksonomy, &CleaningConfig::default());
    ds.rebind(cleaned)
}

fn engine_config(k: usize) -> CubeLsiConfig {
    CubeLsiConfig {
        core_dims: Some((16, 16, 16)),
        num_concepts: Some(k),
        max_als_iters: 6,
        seed: 77,
        ..Default::default()
    }
}

fn build_rankers(ds: &GeneratedDataset) -> Vec<Box<dyn Ranker>> {
    let f = &ds.folksonomy;
    let k = ds.truth.concept_words.len();
    vec![
        Box::new(CubeLsiRanker(CubeLsi::build(f, &engine_config(k)).unwrap())),
        Box::new(
            CubeSim::build(
                f,
                &CubeSimConfig {
                    mode: CubeSimMode::SparseOptimized,
                    num_concepts: Some(k),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        Box::new(FolkRank::build(f, &FolkRankConfig::default())),
        Box::new(FreqRanker::build(f)),
        Box::new(
            LsiRanker::build(
                f,
                &LsiConfig {
                    rank: Some(16),
                    num_concepts: Some(k),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        Box::new(BowRanker::build(f)),
    ]
}

#[test]
fn all_six_rankers_run_and_return_sane_results() {
    let ds = corpus();
    let rankers = build_rankers(&ds);
    assert_eq!(rankers.len(), 6);
    let queries = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 10,
            ..Default::default()
        },
    );
    for ranker in &rankers {
        for q in &queries {
            let hits = ranker.search_ids(&q.tags, 20);
            // Sorted descending, finite, deduplicated, within bounds.
            for w in hits.windows(2) {
                assert!(
                    w[0].score >= w[1].score,
                    "{} returned unsorted scores",
                    ranker.name()
                );
            }
            let mut seen = std::collections::HashSet::new();
            for h in &hits {
                assert!(h.score.is_finite(), "{}: non-finite score", ranker.name());
                assert!(h.resource.index() < ds.folksonomy.num_resources());
                assert!(
                    seen.insert(h.resource),
                    "{}: duplicate resource",
                    ranker.name()
                );
            }
            assert!(hits.len() <= 20);
        }
    }
}

#[test]
fn freq_and_bow_share_candidate_sets() {
    // Both retrieve exactly the resources carrying >= 1 query tag, so their
    // candidate sets must coincide (scores differ).
    let ds = corpus();
    let f = &ds.folksonomy;
    let freq = FreqRanker::build(f);
    let bow = BowRanker::build(f);
    for t in (0..f.num_tags()).step_by(7) {
        let q = [TagId::from_index(t)];
        let mut a: Vec<usize> = freq
            .search_ids(&q, 0)
            .iter()
            .map(|h| h.resource.index())
            .collect();
        let mut b: Vec<usize> = bow
            .search_ids(&q, 0)
            .iter()
            .map(|h| h.resource.index())
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "candidate sets diverge for tag {t}");
    }
}

#[test]
fn cubelsi_retrieves_a_superset_of_exact_matches_for_single_tags() {
    // Concept matching can only widen the candidate set relative to exact
    // matching when idf of the tag's concept is positive: every resource
    // carrying the tag itself carries the tag's concept.
    let ds = corpus();
    let f = &ds.folksonomy;
    let k = ds.truth.concept_words.len();
    let engine = CubeLsi::build(f, &engine_config(k)).unwrap();
    let bow = BowRanker::build(f);
    let mut checked = 0;
    for t in 0..f.num_tags() {
        let q = [TagId::from_index(t)];
        let concept = engine.concepts().concept_of(t);
        if engine.index().idf(concept) <= 0.0 {
            continue; // concept blankets the corpus; CubeLSI abstains
        }
        let cube: std::collections::HashSet<usize> = engine
            .search_ids(&q, 0)
            .iter()
            .map(|h| h.resource.index())
            .collect();
        for h in bow.search_ids(&q, 0) {
            // BOW hits whose tf-idf weight is positive must appear.
            assert!(
                cube.contains(&h.resource.index()),
                "resource {} tagged {t} missing from CubeLSI results",
                h.resource.index()
            );
        }
        checked += 1;
    }
    assert!(checked > 10, "too few tags checked: {checked}");
}

#[test]
fn rebuilding_is_deterministic() {
    let ds = corpus();
    let k = ds.truth.concept_words.len();
    let e1 = CubeLsi::build(&ds.folksonomy, &engine_config(k)).unwrap();
    let e2 = CubeLsi::build(&ds.folksonomy, &engine_config(k)).unwrap();
    assert_eq!(e1.decomposition().fit, e2.decomposition().fit);
    for t in (0..ds.folksonomy.num_tags()).step_by(5) {
        let q = [TagId::from_index(t)];
        let h1 = e1.search_ids(&q, 10);
        let h2 = e2.search_ids(&q, 10);
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.iter().zip(h2.iter()) {
            assert_eq!(a.resource, b.resource);
            assert_eq!(a.score, b.score);
        }
    }
}

#[test]
fn ndcg_of_every_ranker_is_in_unit_interval() {
    let ds = corpus();
    let rankers = build_rankers(&ds);
    let queries = generate_workload(
        &ds,
        &WorkloadConfig {
            num_queries: 16,
            ..Default::default()
        },
    );
    for ranker in &rankers {
        let mut total = 0.0;
        for q in &queries {
            let hits = ranker.search_ids(&q.tags, 10);
            let grades: Vec<u8> = hits
                .iter()
                .map(|h| q.relevance[h.resource.index()])
                .collect();
            let s = ndcg_at(&grades, &q.relevance, 10);
            assert!(
                (0.0..=1.0 + 1e-9).contains(&s),
                "{}: NDCG {s}",
                ranker.name()
            );
            total += s;
        }
        // Every method must beat the empty ranker on this workload.
        assert!(total > 0.0, "{} scored zero on all queries", ranker.name());
    }
}

#[test]
fn query_by_synonym_reaches_untagged_resources() {
    // The paper's headline behaviour: a query tag retrieves resources that
    // were annotated only with *other* tags of the same concept.
    let ds = corpus();
    let f = &ds.folksonomy;
    let k = ds.truth.concept_words.len();
    let engine = CubeLsi::build(f, &engine_config(k)).unwrap();
    let mut bridged = 0;
    for t in 0..f.num_tags() {
        let q = TagId::from_index(t);
        let direct: std::collections::HashSet<usize> = f
            .tag_resource_counts(q)
            .into_iter()
            .map(|(r, _)| r.index())
            .collect();
        for h in engine.search_ids(&[q], 0) {
            if !direct.contains(&h.resource.index()) {
                bridged += 1;
            }
        }
    }
    assert!(bridged > 0, "no concept bridging observed at all");
}

#[test]
fn memory_accounting_is_consistent_with_decomposition() {
    let ds = corpus();
    let k = ds.truth.concept_words.len();
    let engine = CubeLsi::build(&ds.folksonomy, &engine_config(k)).unwrap();
    let expected = engine.decomposition().compressed_len() * std::mem::size_of::<f64>();
    assert_eq!(engine.compressed_bytes(), expected);
    assert!(engine.dense_purified_bytes() > engine.compressed_bytes());
}
