//! Deterministic fault injection against the bounded serving pipeline:
//! connection floods past `--max-conns`, deadline-exceeding queries
//! (both pre- and post-dispatch), stalled readers, byte-at-a-time
//! writers, mid-query disconnects, idle connections, and graceful drain.
//! Every fault asserts two things: the faulted client gets its
//! *specific* degraded reply (`ERR BUSY`, `TIMEOUT ...`,
//! `ERR idle timeout`, a dropped connection), and healthy clients keep
//! receiving bit-identical results throughout, with the matching
//! counter visible in `METRICS`.
//!
//! Faults are injected through the server's `CUBELSI_FAULT_*` env knobs
//! (see `serve.rs`): `..._QUERY_DELAY_MS` / `..._PREDISPATCH_DELAY_MS`
//! slow down queries naming `..._SLOW_TAG` (so slow and healthy traffic
//! share one server), `..._REPLY_PAD` inflates replies past socket
//! buffers to trip the write budget.

mod common;

use common::*;
use std::io::Write;
use std::time::Duration;

/// Flooding past `--max-conns` sheds the excess connection with an
/// explicit `ERR BUSY` and a clean close, while the admitted clients'
/// results stay bit-identical; once load drops, new clients are
/// admitted again and `busy_rejected` shows the shed.
#[test]
fn flood_past_max_conns_sheds_with_busy_and_recovers() {
    let dir = scratch_dir("faults-flood");
    let manifest = build_sharded(&dir, 2);
    let expected_top = reference_top_hit(&manifest, &["people"]);
    let mut server = start_server_with(&manifest, &["--max-conns", "2"], &[]);

    // Fill both admission slots with live clients.
    let mut a = connect(&server.addr);
    let baseline = roundtrip(&mut a, "people");
    assert!(baseline.starts_with("OK\t"), "got {baseline:?}");
    assert!(baseline.contains(&expected_top), "top hit missing");
    let mut b = connect(&server.addr);
    assert_eq!(roundtrip(&mut b, "people"), baseline);

    // The third connection is shed: one explicit reply, then a clean
    // close — the server never reads a request from it.
    let mut c = connect(&server.addr);
    assert_eq!(read_reply_line(&mut c), "ERR BUSY");
    assert_eq!(read_to_end(&mut c), "", "shed connection must close");

    // Shedding is per-connection: the admitted clients keep answering
    // bit-identically while the flood is bouncing off the gate.
    for _ in 0..3 {
        let mut flood = connect(&server.addr);
        assert_eq!(read_reply_line(&mut flood), "ERR BUSY");
        assert_eq!(roundtrip(&mut a, "people"), baseline);
        assert_eq!(roundtrip(&mut b, "people"), baseline);
    }

    // Load drops; the freed slots admit new clients with the same
    // answers, and the sheds are visible in the metrics.
    drop(a);
    drop(b);
    let (mut d, reply) = connect_until_admitted(&server.addr, "people");
    assert_eq!(reply, baseline, "post-recovery answers differ");
    let metrics = read_metrics(&mut d);
    assert_prometheus_valid(&metrics);
    assert!(
        metric_value(&metrics, "cubelsi_busy_rejected_total") >= 4.0,
        "sheds uncounted"
    );
    assert!(metric_value(&metrics, "cubelsi_active_connections") >= 1.0);

    assert_eq!(roundtrip(&mut d, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// A query that blows its `--deadline-ms` budget inside the search gets
/// the specific `TIMEOUT` reply; queries not naming the slow tag are
/// unaffected on the same server, and the timeout is counted.
#[test]
fn deadline_exceeded_query_gets_timeout_reply() {
    let dir = scratch_dir("faults-deadline");
    let manifest = build_sharded(&dir, 2);
    let expected_top = reference_top_hit(&manifest, &["laptop"]);
    let mut server = start_server_with(
        &manifest,
        &["--deadline-ms", "60"],
        &[
            ("CUBELSI_FAULT_QUERY_DELAY_MS", "300"),
            ("CUBELSI_FAULT_SLOW_TAG", "people"),
        ],
    );

    let mut a = connect(&server.addr);
    let healthy = roundtrip(&mut a, "laptop");
    assert!(healthy.starts_with("OK\t"), "got {healthy:?}");
    assert!(healthy.contains(&expected_top), "top hit missing");

    // Fire the slow query, and while it is burning its budget, serve a
    // healthy client concurrently — bit-identically.
    a.write_all(b"people\n").unwrap();
    let mut b = connect(&server.addr);
    assert_eq!(roundtrip(&mut b, "laptop"), healthy);
    assert_eq!(read_reply_line(&mut a), "TIMEOUT deadline 60 ms exceeded");

    // The timed-out connection is still usable for in-budget queries.
    assert_eq!(roundtrip(&mut a, "laptop"), healthy);

    let got = await_metric_at_least(&server.addr, "cubelsi_deadline_timeouts_total", 1.0);
    assert!(got >= 1.0);
    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// A query whose budget is already spent *before* dispatch (queueing
/// delay) is answered `TIMEOUT` without launching the search at all.
#[test]
fn expired_budget_is_rejected_before_dispatch() {
    let dir = scratch_dir("faults-predispatch");
    let manifest = build_sharded(&dir, 2);
    let mut server = start_server_with(
        &manifest,
        &["--deadline-ms", "60"],
        &[
            ("CUBELSI_FAULT_PREDISPATCH_DELAY_MS", "300"),
            ("CUBELSI_FAULT_SLOW_TAG", "people"),
        ],
    );

    let mut a = connect(&server.addr);
    let healthy = roundtrip(&mut a, "laptop");
    assert!(healthy.starts_with("OK\t"), "got {healthy:?}");
    assert_eq!(
        roundtrip(&mut a, "people"),
        "TIMEOUT deadline 60 ms exceeded"
    );
    assert_eq!(roundtrip(&mut a, "laptop"), healthy);

    let got = await_metric_at_least(&server.addr, "cubelsi_deadline_timeouts_total", 1.0);
    assert!(got >= 1.0);
    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// A reader that stops absorbing its (padded, multi-megabyte) reply is
/// dropped once the write budget lapses — freeing its handler — while a
/// healthy client on the same server keeps getting bit-identical
/// results the whole time.
#[test]
fn stalled_reader_is_dropped_without_wedging_the_server() {
    let dir = scratch_dir("faults-stalled");
    let manifest = build_sharded(&dir, 2);
    let mut server = start_server_with(
        &manifest,
        &["--write-timeout-ms", "250"],
        &[
            // 8 MB of padding on `people` replies: far past any socket
            // buffer, so the server's write must block on the stalled
            // reader and the budget must fire.
            ("CUBELSI_FAULT_REPLY_PAD", "8000000"),
            ("CUBELSI_FAULT_SLOW_TAG", "people"),
        ],
    );

    let mut healthy = connect(&server.addr);
    let baseline = roundtrip(&mut healthy, "laptop");
    assert!(baseline.starts_with("OK\t"), "got {baseline:?}");

    // The stalled reader: sends its query, then never reads the reply.
    let mut stalled = connect(&server.addr);
    stalled.write_all(b"people\n").unwrap();

    // The drop is counted once the budget lapses; meanwhile the healthy
    // client never notices.
    let got = await_metric_at_least(&server.addr, "cubelsi_slow_client_drops_total", 1.0);
    assert!(got >= 1.0);
    for _ in 0..3 {
        assert_eq!(roundtrip(&mut healthy, "laptop"), baseline);
    }

    drop(stalled);
    assert_eq!(roundtrip(&mut healthy, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// A pathologically slow but live writer (one byte per 30 ms, slower
/// than the server's read poll) is served normally: partial-line bytes
/// survive read-timeout polls until the newline arrives.
#[test]
fn byte_at_a_time_writer_is_served() {
    let dir = scratch_dir("faults-trickle");
    let manifest = build_sharded(&dir, 2);
    let expected_top = reference_top_hit(&manifest, &["people"]);
    let mut server = start_server(&manifest);

    let mut fast = connect(&server.addr);
    let baseline = roundtrip(&mut fast, "people");

    let mut slow = connect(&server.addr);
    trickle_request(&mut slow, "QUERY people", Duration::from_millis(30));
    let reply = read_reply_line(&mut slow);
    assert_eq!(reply, baseline, "trickled query answered differently");
    assert!(reply.contains(&expected_top));

    assert_eq!(roundtrip(&mut slow, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// A connection idle past `--idle-timeout-ms` gets `ERR idle timeout`
/// and a close — releasing its admission slot — without touching other
/// connections.
#[test]
fn idle_connection_times_out_and_is_counted() {
    let dir = scratch_dir("faults-idle");
    let manifest = build_sharded(&dir, 2);
    let mut server = start_server_with(&manifest, &["--idle-timeout-ms", "400"], &[]);

    let mut idle = connect(&server.addr);
    let baseline = roundtrip(&mut idle, "people");
    assert!(baseline.starts_with("OK\t"), "got {baseline:?}");

    // Sit silent: the next thing on this socket is the idle reply and
    // then EOF (the read itself blocks until the server acts).
    assert_eq!(read_reply_line(&mut idle), "ERR idle timeout");
    assert_eq!(read_to_end(&mut idle), "", "idled connection must close");

    // Other connections are untouched, and the timeout is counted.
    let mut healthy = connect(&server.addr);
    assert_eq!(roundtrip(&mut healthy, "people"), baseline);
    let metrics = read_metrics(&mut healthy);
    assert_prometheus_valid(&metrics);
    assert!(metric_value(&metrics, "cubelsi_idle_timeouts_total") >= 1.0);

    assert_eq!(roundtrip(&mut healthy, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that disconnects while its (slowed) query is still running
/// must cost the server nothing but that one connection: the reply
/// write fails, the handler moves on, healthy clients are untouched,
/// and shutdown still exits cleanly (no leaked panic).
#[test]
fn mid_query_disconnect_leaves_server_healthy() {
    let dir = scratch_dir("faults-disconnect");
    let manifest = build_sharded(&dir, 2);
    let mut server = start_server_with(
        &manifest,
        &[],
        &[
            ("CUBELSI_FAULT_QUERY_DELAY_MS", "300"),
            ("CUBELSI_FAULT_SLOW_TAG", "people"),
        ],
    );

    let mut healthy = connect(&server.addr);
    let baseline = roundtrip(&mut healthy, "laptop");
    assert!(baseline.starts_with("OK\t"), "got {baseline:?}");

    // Kick off the slow query and vanish before the reply lands.
    let mut doomed = connect(&server.addr);
    doomed.write_all(b"people\n").unwrap();
    drop(doomed);

    // The healthy client rides through the failed reply write; even the
    // slow tag still answers (slowly, but with no deadline configured).
    for _ in 0..3 {
        assert_eq!(roundtrip(&mut healthy, "laptop"), baseline);
    }
    let slow_reply = roundtrip(&mut healthy, "people");
    assert!(slow_reply.starts_with("OK\t"), "got {slow_reply:?}");

    assert_eq!(roundtrip(&mut healthy, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful drain: `SHUTDOWN` stops admission but lets an in-flight
/// (slowed) query finish and deliver its full reply before the
/// connection is told the server is going away.
#[test]
fn graceful_drain_finishes_inflight_query() {
    let dir = scratch_dir("faults-drain");
    let manifest = build_sharded(&dir, 2);
    let expected_top = reference_top_hit(&manifest, &["people"]);
    let mut server = start_server_with(
        &manifest,
        &[],
        &[
            ("CUBELSI_FAULT_QUERY_DELAY_MS", "500"),
            ("CUBELSI_FAULT_SLOW_TAG", "people"),
        ],
    );

    let mut inflight = connect(&server.addr);
    inflight.write_all(b"people\n").unwrap();
    // Let the handler pick the query up and enter its slow phase.
    std::thread::sleep(Duration::from_millis(150));

    let mut killer = connect(&server.addr);
    assert_eq!(roundtrip(&mut killer, "SHUTDOWN"), "OK shutting down");

    // The in-flight query still completes with its full, correct reply;
    // only afterwards does the drain close the connection.
    let reply = read_reply_line(&mut inflight);
    assert!(reply.starts_with("OK\t"), "in-flight query lost: {reply:?}");
    assert!(reply.contains(&expected_top), "drained reply degraded");
    assert_eq!(read_reply_line(&mut inflight), "ERR server shutting down");

    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}
