//! Proves the steady-state serving claim: once a [`QuerySession`] and the
//! output buffer are warmed, `search_tags_with` performs **zero heap
//! allocations** per query — under every pruning strategy (the MaxScore
//! reference, the default block-max loop, and the compressed
//! decode-and-admit loop), and on an engine serving zero-copy out of a
//! loaded artifact buffer (including the compressed mirror borrowed
//! straight from a format-v3 artifact).
//!
//! A counting global allocator wraps the system allocator; the test warms
//! the session over the query set, snapshots the allocation counter, runs
//! every query again, and asserts the counter did not move. The same
//! contract is then proven for sharded scatter-gather — sequential and
//! fanned across the persistent worker pool (pool-cached sessions make
//! the pooled steady state allocation-free too). This file holds exactly
//! one test so no concurrent test pollutes the counter.

use cubelsi::core::{persist, ConceptIndex, ConceptModel, PruningStrategy, QueryEngine};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::TagId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout contract to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours, passed through unchanged.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: forwards the caller's ptr/layout contract to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as ours, passed through unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: forwards the caller's realloc contract to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours, passed through unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    // SAFETY: forwards the caller's layout contract to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours, passed through unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn assert_steady_state_alloc_free(
    engine: &QueryEngine,
    model: &ConceptModel,
    queries: &[(Vec<TagId>, usize)],
) {
    let mut session = engine.session();
    let mut out = Vec::new();
    // Warm-up: grow every scratch buffer to its steady size.
    for _ in 0..2 {
        for (tags, k) in queries {
            engine.search_tags_with(&mut session, model, tags, *k, &mut out);
        }
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (tags, k) in queries {
        engine.search_tags_with(&mut session, model, tags, *k, &mut out);
        assert!(out.len() <= *k);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state search_tags_with must not allocate ({:?})",
        engine.strategy()
    );
}

#[test]
fn steady_state_search_allocates_nothing() {
    let ds = generate(&GeneratorConfig {
        users: 60,
        resources: 120,
        concepts: 8,
        assignments: 4_000,
        seed: 77,
        ..Default::default()
    });
    let f = &ds.folksonomy;
    // Hard model straight from a deterministic assignment (the engine does
    // not care where the model came from).
    let assignments: Vec<usize> = (0..f.num_tags()).map(|t| t % 8).collect();
    let model = ConceptModel::from_assignments(assignments, 1.0);
    let mut engine = QueryEngine::new(ConceptIndex::build(f, &model));

    // A mix of single- and multi-term queries at several k.
    let queries: Vec<(Vec<TagId>, usize)> = (0..f.num_tags().min(40))
        .map(|t| {
            let tags: Vec<TagId> = (0..=(t % 3))
                .map(|o| TagId::from_index((t + o) % f.num_tags()))
                .collect();
            (tags, [1usize, 10, 50][t % 3])
        })
        .collect();

    // Every pruning strategy on the freshly built engine.
    for strategy in [
        PruningStrategy::BlockMax,
        PruningStrategy::MaxScore,
        PruningStrategy::CompressedBlockMax,
    ] {
        engine.set_strategy(strategy);
        assert_steady_state_alloc_free(&engine, &model, &queries);
    }

    // And every strategy on an engine serving zero-copy out of a
    // compressed (format v3) artifact buffer: the Slab-borrowed arrays —
    // exact and compressed mirror alike — must change nothing about the
    // steady-state allocation profile.
    let cfg = cubelsi::core::CubeLsiConfig {
        core_dims: Some((8, 8, 8)),
        num_concepts: Some(8),
        max_als_iters: 4,
        ..Default::default()
    };
    let built = cubelsi::core::CubeLsi::build(f, &cfg).unwrap();
    let bytes = persist::save_to_vec_with(&built, f, true);
    let buf = std::sync::Arc::new(cubelsi::core::AlignedBytes::from_bytes(&bytes));
    let loaded = persist::load_zero_copy(buf).unwrap();
    assert!(loaded.model.index().is_zero_copy());
    // Cloning the index clones `Arc`s, not arrays: the rebuilt engine
    // still serves out of the file buffer.
    let mut zc_engine = QueryEngine::new(loaded.model.index().clone());
    assert!(zc_engine.index().is_zero_copy());
    for strategy in [
        PruningStrategy::BlockMax,
        PruningStrategy::MaxScore,
        PruningStrategy::CompressedBlockMax,
    ] {
        zc_engine.set_strategy(strategy);
        assert_steady_state_alloc_free(&zc_engine, &model, &queries);
    }

    // Sharded scatter-gather steady state: after warm-up, per-shard
    // sessions, the shared term buffer, the per-shard result buffers,
    // and the k-way merge must all reuse their capacity — hot-reloadable
    // sharded serving keeps the zero-alloc contract.
    engine.set_strategy(PruningStrategy::BlockMax);
    let set = cubelsi::core::shard::ShardSet::from_parts(
        cubelsi::core::shard::partition_engines(&engine, 3),
        f.clone(),
        model.clone(),
    )
    .unwrap();
    let mut sharded_session = set.session();
    let mut out = Vec::new();
    for _ in 0..2 {
        for (tags, k) in &queries {
            set.search_tags_with(&mut sharded_session, &model, tags, *k, &mut out);
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (tags, k) in &queries {
        set.search_tags_with(&mut sharded_session, &model, tags, *k, &mut out);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state sharded search_tags_with must not allocate"
    );

    // Pooled steady state: once the worker pool is warm, a scatter query
    // fanned across pool threads allocates nothing either — per-worker
    // sessions and result buffers are cached in the pool, the batch
    // control block lives on the caller's stack, and the handoff reuses
    // the injector's storage. Warm-up is adaptive because work stealing
    // makes it nondeterministic *which* worker serves a query: keep
    // warming until the pool is quiescent (several consecutive
    // allocation-free rounds), then measure.
    cubelsi::linalg::parallel::set_num_threads(3);
    let mut quiescent = 0;
    let mut rounds = 0;
    while quiescent < 10 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for (tags, k) in &queries {
            set.search_tags_scatter_with(&mut sharded_session, &model, tags, *k, &mut out);
        }
        if ALLOCATIONS.load(Ordering::Relaxed) == before {
            quiescent += 1;
        } else {
            quiescent = 0;
        }
        rounds += 1;
        assert!(
            rounds < 2_000,
            "pooled scatter never reached an allocation-free steady state"
        );
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        for (tags, k) in &queries {
            set.search_tags_scatter_with(&mut sharded_session, &model, tags, *k, &mut out);
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state pooled scatter must not allocate"
    );
    cubelsi::linalg::parallel::set_num_threads(0);
}
