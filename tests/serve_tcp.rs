//! End-to-end test of the `serve` TCP line protocol: builds a sharded
//! model through the real CLI, starts the server on an ephemeral port,
//! and drives it over real sockets — queries, concurrent clients,
//! hostile input (oversized and non-UTF-8 requests), `RELOAD` under a
//! live connection, and `SHUTDOWN`. The query replies are checked
//! against the `query` subcommand's answer on the same manifest, which
//! the sharded-equivalence suite in turn pins to the unsharded engine.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_cubelsi-search");

/// The Figure-2 corpus as a TSV dump.
const FIG2_TSV: &str = "u1\tfolk\tr1\nu1\tfolk\tr2\nu2\tfolk\tr2\nu3\tfolk\tr2\n\
                        u1\tpeople\tr1\nu2\tlaptop\tr3\nu3\tlaptop\tr3\n";

struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn build_sharded(dir: &Path, shards: usize) -> PathBuf {
    let tsv = dir.join("fig2.tsv");
    std::fs::write(&tsv, FIG2_TSV).unwrap();
    let manifest = dir.join("model.shards");
    let status = Command::new(BIN)
        .args([
            "build",
            "--no-clean",
            "--concepts",
            "2",
            "--shards",
            &shards.to_string(),
        ])
        .arg(&tsv)
        .arg(&manifest)
        .status()
        .unwrap();
    assert!(status.success(), "build --shards failed");
    manifest
}

fn start_server(manifest: &Path) -> Server {
    let mut child = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0"])
        .arg(manifest)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // The server prints `listening <addr>` on stdout once bound.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().expect("server exited before binding").unwrap();
    let addr = first
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected server banner {first:?}"))
        .to_owned();
    Server { child, addr }
}

fn connect(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_owned()
}

/// The `query` subcommand's top hit rendered the way the TCP reply
/// embeds hits: `<name>  (<score>)`.
fn reference_top_hit(manifest: &Path, tags: &[&str]) -> String {
    let output = Command::new(BIN)
        .arg("query")
        .arg(manifest)
        .args(tags)
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    stdout
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("1. "))
        .expect("query printed a top hit")
        .trim()
        .to_owned()
}

#[test]
fn tcp_serve_end_to_end() {
    let dir = std::env::temp_dir().join(format!("cubelsi-serve-tcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = build_sharded(&dir, 3);
    let expected_top = reference_top_hit(&manifest, &["people"]);
    let server = start_server(&manifest);

    // Plain query: reply matches the `query` subcommand's top hit.
    let mut a = connect(&server.addr);
    let reply = roundtrip(&mut a, "people");
    assert!(reply.starts_with("OK\t"), "unexpected reply {reply:?}");
    let mut fields = reply.split('\t').skip(1);
    let count: usize = fields.next().unwrap().parse().unwrap();
    assert!(count >= 2, "people must match r1 and r2: {reply:?}");
    assert_eq!(fields.next().unwrap(), expected_top, "top hit differs");

    // A second concurrent client gets its own session.
    let mut b = connect(&server.addr);
    let reply_b = roundtrip(&mut b, "QUERY people");
    assert_eq!(reply_b, reply, "concurrent client saw different answers");

    // Unknown tags are an empty OK, not an error.
    assert_eq!(roundtrip(&mut a, "no-such-tag"), "OK\t0");

    // A bare QUERY earns exactly one reply line (an ERR), never silence
    // — a lockstep client must not deadlock waiting for it.
    assert!(roundtrip(&mut a, "QUERY").starts_with("ERR"));

    // Hostile input: non-UTF-8 gets an ERR reply, the session survives.
    a.write_all(b"\xFF\xFE\xFD\n").unwrap();
    let mut reader = BufReader::new(a.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"), "got {line:?}");
    assert!(roundtrip(&mut a, "people").starts_with("OK\t"));

    // Hostile input: an oversized request line is refused and the
    // connection closed — but only that connection.
    let mut c = connect(&server.addr);
    let big = vec![b'x'; 80 * 1024];
    c.write_all(&big).unwrap();
    c.write_all(b"\n").unwrap();
    let mut creader = BufReader::new(c.try_clone().unwrap());
    let mut cline = String::new();
    creader.read_line(&mut cline).unwrap();
    assert!(cline.starts_with("ERR"), "got {cline:?}");
    let mut end = String::new();
    creader.read_to_string(&mut end).unwrap();
    assert!(
        end.is_empty(),
        "connection must close after an oversized line"
    );

    // A mid-query disconnect must not take the server down.
    let mut d = connect(&server.addr);
    d.write_all(b"half a requ").unwrap();
    drop(d);

    // STATS reports server-wide latency percentiles plus the query
    // executor's counters, in one parseable reply line.
    let stats = roundtrip(&mut a, "STATS");
    assert!(stats.starts_with("OK"), "got {stats:?}");
    assert!(stats.contains("queries"), "got {stats:?}");
    for field in ["p50", "p95", "p99", "queries/s"] {
        assert!(stats.contains(field), "missing {field}: {stats:?}");
    }
    for field in ["pool", "workers", "inline", "fanout", "stolen", "queued"] {
        assert!(stats.contains(field), "missing {field}: {stats:?}");
    }
    // Queries ran, so the latency block is populated and every counter
    // parses as an integer: "pool N workers | inline N | fanout N | ...".
    let exec_block = stats
        .split_once(" | pool ")
        .map(|(_, rest)| rest)
        .unwrap_or_else(|| panic!("no executor block: {stats:?}"));
    let mut numbers = exec_block
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty());
    for _ in 0..4 {
        numbers
            .next()
            .expect("four executor counters")
            .parse::<u64>()
            .unwrap();
    }
    // The queries above all went through the adaptive dispatcher, so
    // inline + fanout covers every one of them.
    let decisions: u64 = ["inline ", "fanout "]
        .iter()
        .map(|k| {
            let tail = &exec_block[exec_block.find(k).unwrap() + k.len()..];
            tail.split_whitespace()
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    assert!(decisions >= 4, "dispatch decisions unrecorded: {stats:?}");

    // RELOAD hot-swaps the generation; the already-open client keeps
    // serving, with identical answers (same manifest on disk).
    let reload = roundtrip(&mut a, "RELOAD");
    assert!(
        reload.starts_with("OK reloaded generation=2 shards=3"),
        "got {reload:?}"
    );
    let after = roundtrip(&mut a, "people");
    assert_eq!(after, reply, "answers changed across an identical reload");
    // The other pre-reload connection also keeps working.
    assert_eq!(roundtrip(&mut b, "people"), reply);

    // QUIT closes one session; SHUTDOWN stops the server — promptly,
    // even though `b` is still connected and idle (handlers poll the
    // stop flag instead of blocking in read forever).
    let idle = connect(&server.addr);
    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    drop(b);

    let mut server = server;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match server.child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "server exited with {status}");
                break;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => panic!("server did not stop after SHUTDOWN (idle client still open)"),
        }
    }
    drop(idle);
    std::fs::remove_dir_all(&dir).ok();
}

/// A failed reload (manifest swapped for garbage) must leave the old
/// generation serving.
#[test]
fn failed_reload_keeps_serving() {
    let dir = std::env::temp_dir().join(format!("cubelsi-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = build_sharded(&dir, 2);
    let server = start_server(&manifest);
    let mut a = connect(&server.addr);
    let before = roundtrip(&mut a, "people");
    assert!(before.starts_with("OK\t"));

    // Corrupt the manifest on disk, then ask for a reload.
    std::fs::write(&manifest, b"not a manifest at all").unwrap();
    let reload = roundtrip(&mut a, "RELOAD");
    assert!(reload.starts_with("ERR reload failed"), "got {reload:?}");
    // The old generation still answers, byte for byte.
    assert_eq!(roundtrip(&mut a, "people"), before);

    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();
}
