//! End-to-end test of the `serve` TCP line protocol: builds a sharded
//! model through the real CLI, starts the server on an ephemeral port,
//! and drives it over real sockets — queries, concurrent clients,
//! hostile input (oversized and non-UTF-8 requests), `RELOAD` under a
//! live connection, `STATS`/`METRICS` observability, admission limits
//! from the environment, and `SHUTDOWN`. The query replies are checked
//! against the `query` subcommand's answer on the same manifest, which
//! the sharded-equivalence suite in turn pins to the unsharded engine.
//! The fault-specific degradations (deadlines, floods, stalled readers)
//! live in `serve_faults.rs`.

mod common;

use common::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::time::Duration;

#[test]
fn tcp_serve_end_to_end() {
    let dir = scratch_dir("serve-tcp");
    let manifest = build_sharded(&dir, 3);
    let expected_top = reference_top_hit(&manifest, &["people"]);
    let server = start_server(&manifest);

    // Plain query: reply matches the `query` subcommand's top hit.
    let mut a = connect(&server.addr);
    let reply = roundtrip(&mut a, "people");
    assert!(reply.starts_with("OK\t"), "unexpected reply {reply:?}");
    let mut fields = reply.split('\t').skip(1);
    let count: usize = fields.next().unwrap().parse().unwrap();
    assert!(count >= 2, "people must match r1 and r2: {reply:?}");
    assert_eq!(fields.next().unwrap(), expected_top, "top hit differs");

    // A second concurrent client gets its own session.
    let mut b = connect(&server.addr);
    let reply_b = roundtrip(&mut b, "QUERY people");
    assert_eq!(reply_b, reply, "concurrent client saw different answers");

    // Unknown tags are an empty OK, not an error.
    assert_eq!(roundtrip(&mut a, "no-such-tag"), "OK\t0");

    // A bare QUERY earns exactly one reply line (an ERR), never silence
    // — a lockstep client must not deadlock waiting for it.
    assert!(roundtrip(&mut a, "QUERY").starts_with("ERR"));

    // Hostile input: non-UTF-8 gets an ERR reply, the session survives.
    a.write_all(b"\xFF\xFE\xFD\n").unwrap();
    let mut reader = BufReader::new(a.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"), "got {line:?}");
    assert!(roundtrip(&mut a, "people").starts_with("OK\t"));

    // Hostile input: an oversized request line is refused and the
    // connection closed — but only that connection.
    let mut c = connect(&server.addr);
    let big = vec![b'x'; 80 * 1024];
    c.write_all(&big).unwrap();
    c.write_all(b"\n").unwrap();
    let mut creader = BufReader::new(c.try_clone().unwrap());
    let mut cline = String::new();
    creader.read_line(&mut cline).unwrap();
    assert!(cline.starts_with("ERR"), "got {cline:?}");
    let mut end = String::new();
    creader.read_to_string(&mut end).unwrap();
    assert!(
        end.is_empty(),
        "connection must close after an oversized line"
    );

    // A mid-query disconnect must not take the server down.
    let mut d = connect(&server.addr);
    d.write_all(b"half a requ").unwrap();
    drop(d);

    // STATS reports server-wide latency percentiles, the query
    // executor's counters, and the pipeline's degradation counters, in
    // one parseable reply line.
    let stats = roundtrip(&mut a, "STATS");
    assert!(stats.starts_with("OK"), "got {stats:?}");
    assert!(stats.contains("queries"), "got {stats:?}");
    for field in ["p50", "p95", "p99", "queries/s"] {
        assert!(stats.contains(field), "missing {field}: {stats:?}");
    }
    for field in ["pool", "workers", "inline", "fanout", "stolen", "queued"] {
        assert!(stats.contains(field), "missing {field}: {stats:?}");
    }
    for field in [
        "active",
        "busy_rejected",
        "deadline_timeouts",
        "slow_client_drops",
        "idle_timeouts",
        "accept_errors",
    ] {
        assert!(stats.contains(field), "missing {field}: {stats:?}");
    }
    // Queries ran, so the latency block is populated and every counter
    // parses as an integer: "pool N workers | inline N | fanout N | ...".
    let exec_block = stats
        .split_once(" | pool ")
        .map(|(_, rest)| rest)
        .unwrap_or_else(|| panic!("no executor block: {stats:?}"));
    let mut numbers = exec_block
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty());
    for _ in 0..4 {
        numbers
            .next()
            .expect("four executor counters")
            .parse::<u64>()
            .unwrap();
    }
    // The queries above all went through the adaptive dispatcher, so
    // inline + fanout covers every one of them.
    let decisions: u64 = ["inline ", "fanout "]
        .iter()
        .map(|k| {
            let tail = &exec_block[exec_block.find(k).unwrap() + k.len()..];
            tail.split_whitespace()
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    assert!(decisions >= 4, "dispatch decisions unrecorded: {stats:?}");

    // METRICS renders the same state as valid Prometheus text
    // exposition: all samples TYPE-declared, float values, `# EOF`
    // framing — with the gauges reflecting this very connection.
    let metrics = read_metrics(&mut a);
    assert_prometheus_valid(&metrics);
    assert!(
        metric_value(&metrics, "cubelsi_queries_total") >= 4.0,
        "queries uncounted"
    );
    assert!(
        metric_value(&metrics, "cubelsi_active_connections") >= 1.0,
        "this connection must be in the gauge"
    );
    assert_eq!(metric_value(&metrics, "cubelsi_index_generation"), 1.0);
    for name in [
        "cubelsi_busy_rejected_total",
        "cubelsi_deadline_timeouts_total",
        "cubelsi_slow_client_drops_total",
        "cubelsi_idle_timeouts_total",
        "cubelsi_accept_errors_total",
        "cubelsi_exec_late_dispatch_total",
    ] {
        assert_eq!(metric_value(&metrics, name), 0.0, "{name} moved unprovoked");
    }

    // RELOAD hot-swaps the generation; the already-open client keeps
    // serving, with identical answers (same manifest on disk).
    let reload = roundtrip(&mut a, "RELOAD");
    assert!(
        reload.starts_with("OK reloaded generation=2 shards=3"),
        "got {reload:?}"
    );
    let after = roundtrip(&mut a, "people");
    assert_eq!(after, reply, "answers changed across an identical reload");
    // The other pre-reload connection also keeps working, and the
    // generation gauge tracks the swap.
    assert_eq!(roundtrip(&mut b, "people"), reply);
    let metrics = read_metrics(&mut a);
    assert_eq!(metric_value(&metrics, "cubelsi_index_generation"), 2.0);

    // QUIT closes one session; SHUTDOWN stops the server — promptly,
    // even though `b` is still connected and idle (handlers poll the
    // stop flag instead of blocking in read forever).
    let idle = connect(&server.addr);
    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    drop(b);

    let mut server = server;
    server.wait_for_clean_exit(Duration::from_secs(10));
    drop(idle);
    std::fs::remove_dir_all(&dir).ok();
}

/// A failed reload (manifest swapped for garbage) must leave the old
/// generation serving.
#[test]
fn failed_reload_keeps_serving() {
    let dir = scratch_dir("serve-reload");
    let manifest = build_sharded(&dir, 2);
    let server = start_server(&manifest);
    let mut a = connect(&server.addr);
    let before = roundtrip(&mut a, "people");
    assert!(before.starts_with("OK\t"));

    // Corrupt the manifest on disk, then ask for a reload.
    std::fs::write(&manifest, b"not a manifest at all").unwrap();
    let reload = roundtrip(&mut a, "RELOAD");
    assert!(reload.starts_with("ERR reload failed"), "got {reload:?}");
    // The old generation still answers, byte for byte.
    assert_eq!(roundtrip(&mut a, "people"), before);

    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();
}

/// The admission limit can come from the environment
/// (`CUBELSI_MAX_CONNS`, mirroring `CUBELSI_THREADS`) instead of the
/// flag — and the shed moves the `busy_rejected` counter.
#[test]
fn env_max_conns_limits_admission() {
    let dir = scratch_dir("serve-env-limit");
    let manifest = build_sharded(&dir, 2);
    let mut server = start_server_with(&manifest, &[], &[("CUBELSI_MAX_CONNS", "1")]);

    let mut a = connect(&server.addr);
    let reply = roundtrip(&mut a, "people");
    assert!(reply.starts_with("OK\t"), "got {reply:?}");

    // The single slot is taken: the next connection is shed.
    let mut b = connect(&server.addr);
    assert_eq!(read_reply_line(&mut b), "ERR BUSY");
    assert_eq!(read_to_end(&mut b), "", "shed connection must close");

    let metrics = read_metrics(&mut a);
    assert_prometheus_valid(&metrics);
    assert!(metric_value(&metrics, "cubelsi_busy_rejected_total") >= 1.0);
    assert_eq!(metric_value(&metrics, "cubelsi_active_connections"), 1.0);

    assert_eq!(roundtrip(&mut a, "SHUTDOWN"), "OK shutting down");
    server.wait_for_clean_exit(Duration::from_secs(10));
    std::fs::remove_dir_all(&dir).ok();
}
