//! Shared harness for the TCP serving suites (`serve_tcp`,
//! `serve_faults`): builds a sharded model through the real CLI, starts
//! `serve` on an ephemeral port with arbitrary extra flags / env vars
//! (the fault-injection knobs), and drives it over real sockets. The
//! chaos helpers (trickle writers, metric scrapes, busy-retry connects)
//! live here so both suites degrade clients the same way.

// Each test binary uses a subset of these helpers.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

pub const BIN: &str = env!("CARGO_BIN_EXE_cubelsi-search");

/// The Figure-2 corpus as a TSV dump.
pub const FIG2_TSV: &str = "u1\tfolk\tr1\nu1\tfolk\tr2\nu2\tfolk\tr2\nu3\tfolk\tr2\n\
                            u1\tpeople\tr1\nu2\tlaptop\tr3\nu3\tlaptop\tr3\n";

pub struct Server {
    pub child: Child,
    pub addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Server {
    /// Waits for the server process to exit cleanly (after `SHUTDOWN`),
    /// panicking if it is still alive at the deadline or exited nonzero.
    pub fn wait_for_clean_exit(&mut self, deadline: Duration) {
        let until = Instant::now() + deadline;
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() < until => std::thread::sleep(Duration::from_millis(50)),
                None => panic!("server did not stop in {deadline:?}"),
            }
        }
    }
}

/// A per-test scratch directory, unique across concurrently running test
/// binaries and tests within one binary.
pub fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cubelsi-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds the Figure-2 corpus into a sharded manifest via the real CLI.
pub fn build_sharded(dir: &Path, shards: usize) -> PathBuf {
    let tsv = dir.join("fig2.tsv");
    std::fs::write(&tsv, FIG2_TSV).unwrap();
    let manifest = dir.join("model.shards");
    let status = Command::new(BIN)
        .args([
            "build",
            "--no-clean",
            "--concepts",
            "2",
            "--shards",
            &shards.to_string(),
        ])
        .arg(&tsv)
        .arg(&manifest)
        .status()
        .unwrap();
    assert!(status.success(), "build --shards failed");
    manifest
}

/// Starts `serve` on an ephemeral port with extra CLI flags and env vars
/// (the latter carry both the `CUBELSI_MAX_CONNS`-style limit knobs and
/// the `CUBELSI_FAULT_*` chaos knobs), returning once it reports the
/// bound address.
pub fn start_server_with(manifest: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> Server {
    let mut cmd = Command::new(BIN);
    cmd.args(["serve", "--listen", "127.0.0.1:0"]);
    cmd.args(extra_args);
    cmd.arg(manifest);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // The server prints `listening <addr>` on stdout once bound.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().expect("server exited before binding").unwrap();
    let addr = first
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected server banner {first:?}"))
        .to_owned();
    Server { child, addr }
}

pub fn start_server(manifest: &Path) -> Server {
    start_server_with(manifest, &[], &[])
}

pub fn connect(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

/// Sends one request line and reads one reply line.
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    read_reply_line(stream)
}

/// Reads a single reply line off the stream, byte by byte: a
/// per-call `BufReader` would pull any *following* reply line that
/// arrived in the same segment into its buffer and discard it on
/// drop, making the next call see a spurious EOF.
pub fn read_reply_line(stream: &mut TcpStream) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => panic!("read_reply_line: {e}"),
        }
    }
    String::from_utf8_lossy(&line).trim_end().to_owned()
}

/// Keeps connecting (and retrying past `ERR BUSY` sheds) until a query
/// roundtrip succeeds, returning the accepted connection and its reply.
/// This is how a well-behaved client rides out a shedding server.
pub fn connect_until_admitted(addr: &str, request: &str) -> (TcpStream, String) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut stream = connect(addr);
        // A shed connection may already be closed by the time the probe
        // request goes out — a failed write or an empty read is just
        // another "busy" signal to retry past.
        let sent = stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_ok();
        let reply = if sent {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(_) => line.trim_end().to_owned(),
                Err(_) => String::new(),
            }
        } else {
            String::new()
        };
        if sent && !reply.is_empty() && reply != "ERR BUSY" {
            return (stream, reply);
        }
        assert!(
            Instant::now() < deadline,
            "server kept shedding for 10s after load was released"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Sends `METRICS` and reads the multi-line Prometheus reply through its
/// `# EOF` sentinel.
pub fn read_metrics(stream: &mut TcpStream) -> Vec<String> {
    stream.write_all(b"METRICS\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "connection closed inside a METRICS reply");
        let line = line.trim_end().to_owned();
        let done = line == "# EOF";
        lines.push(line);
        if done {
            return lines;
        }
    }
}

/// Structural validation of a Prometheus text exposition: every sample
/// line is `name value` with a float value and a preceding `# TYPE`
/// declaration of a known kind, and the reply ends with `# EOF`.
pub fn assert_prometheus_valid(lines: &[String]) {
    assert_eq!(
        lines.last().map(String::as_str),
        Some("# EOF"),
        "exposition must end with the # EOF sentinel"
    );
    let mut declared: Vec<String> = Vec::new();
    for line in lines {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            let name = words.next().expect("TYPE line names a metric");
            let kind = words.next().expect("TYPE line declares a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unexpected metric kind {kind} in {line:?}"
            );
            declared.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            assert!(
                line == "# EOF" || line.starts_with("# HELP "),
                "stray comment {line:?}"
            );
            continue;
        }
        assert!(!line.is_empty(), "blank line inside exposition");
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample is not `name value`: {line:?}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("sample value must parse as a float: {line:?}"));
        let base = name_part
            .split('{')
            .next()
            .unwrap_or(name_part)
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            declared.iter().any(|d| d == base),
            "sample {name_part} has no preceding TYPE declaration"
        );
    }
}

/// The value of one metric sample (exact name match, no labels) in a
/// scraped exposition.
pub fn metric_value(lines: &[String], name: &str) -> f64 {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found in exposition"))
}

/// Scrapes METRICS on a fresh connection until `name` reaches at least
/// `want` (counters move asynchronously to client-visible replies — e.g.
/// a slow-client drop is counted when the write budget lapses, not when
/// the victim observes the close).
pub fn await_metric_at_least(addr: &str, name: &str, want: f64) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = connect(addr);
        let metrics = read_metrics(&mut probe);
        assert_prometheus_valid(&metrics);
        let got = metric_value(&metrics, name);
        if got >= want {
            return got;
        }
        assert!(
            Instant::now() < deadline,
            "metric {name} stuck at {got}, wanted >= {want}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The `query` subcommand's top hit rendered the way the TCP reply
/// embeds hits: `<name>  (<score>)`.
pub fn reference_top_hit(manifest: &Path, tags: &[&str]) -> String {
    let output = Command::new(BIN)
        .arg("query")
        .arg(manifest)
        .args(tags)
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    stdout
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("1. "))
        .expect("query printed a top hit")
        .trim()
        .to_owned()
}

/// Writes a request one byte at a time with a pause between bytes — a
/// pathologically slow but live writer. Returns once the newline is out.
pub fn trickle_request(stream: &mut TcpStream, request: &str, pause: Duration) {
    for byte in request.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().ok();
        std::thread::sleep(pause);
    }
    stream.write_all(b"\n").unwrap();
}

/// Reads to EOF, returning everything left on the stream.
pub fn read_to_end(stream: &mut TcpStream) -> String {
    let mut rest = String::new();
    stream.read_to_string(&mut rest).ok();
    rest
}
