//! End-to-end equivalence of the optimized offline kernels with their
//! reference implementations.
//!
//! The build-performance overhaul replaced naive Lloyd's k-means with a
//! bounds-pruned variant and the materialized two-matmul Gram applies with
//! fused single-pass kernels. Both swaps claim **bit-identical** results;
//! these tests enforce the claim end to end on randomized corpora: a build
//! with the reference kernels must produce byte-for-byte the same tag
//! distances, concept assignments, and ranked search results as the
//! optimized default.

use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::TagId;

fn corpus(
    users: usize,
    resources: usize,
    assignments: usize,
    seed: u64,
) -> cubelsi::datagen::GeneratedDataset {
    generate(&GeneratorConfig {
        users,
        resources,
        concepts: 8,
        assignments,
        noise_rate: 0.05,
        seed,
        ..Default::default()
    })
}

/// Asserts that two engines rank identically (resources and bitwise
/// scores) for every single-tag query and a few multi-tag queries.
fn assert_identical_search(a: &CubeLsi, b: &CubeLsi, num_tags: usize) {
    for t in 0..num_tags {
        let tag = TagId::from_index(t);
        let ha = a.search_ids(&[tag], 10);
        let hb = b.search_ids(&[tag], 10);
        assert_eq!(ha.len(), hb.len(), "result count diverged for tag {t}");
        for (x, y) in ha.iter().zip(hb.iter()) {
            assert_eq!(x.resource, y.resource, "ranking diverged for tag {t}");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "score bits diverged for tag {t}"
            );
        }
    }
    for pair in [(0usize, 1usize), (1, 3), (2, 5)] {
        let tags = [TagId::from_index(pair.0), TagId::from_index(pair.1)];
        let ha = a.search_ids(&tags, 0);
        let hb = b.search_ids(&tags, 0);
        assert_eq!(ha.len(), hb.len());
        for (x, y) in ha.iter().zip(hb.iter()) {
            assert_eq!(x.resource, y.resource);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}

#[test]
fn pruned_kmeans_and_fused_gram_are_bit_identical_end_to_end() {
    for (users, resources, assignments, seed) in [
        (40usize, 30usize, 2_000usize, 21u64),
        (80, 60, 5_000, 22),
        (25, 45, 1_500, 23),
    ] {
        let ds = corpus(users, resources, assignments, seed);
        let optimized_cfg = CubeLsiConfig {
            num_concepts: Some(6),
            max_als_iters: 6,
            seed: seed ^ 0xbeef,
            ..Default::default()
        };
        // Only the two kernel toggles under test flip; the spectral solver
        // stays on the default path on both sides so any divergence is
        // attributable to k-means or the Gram apply.
        let reference_cfg = CubeLsiConfig {
            naive_kmeans: true,
            materialized_gram: true,
            ..optimized_cfg.clone()
        };
        let optimized = CubeLsi::build(&ds.folksonomy, &optimized_cfg).unwrap();
        let reference = CubeLsi::build(&ds.folksonomy, &reference_cfg).unwrap();

        // Upstream of search: the purified distances and the concept
        // assignments must already agree bitwise.
        let da = optimized.distances().matrix();
        let db = reference.distances().matrix();
        assert!(
            da.approx_eq(db, 0.0),
            "tag distances diverged on corpus seed {seed}"
        );
        assert_eq!(
            optimized.concepts().assignments(),
            reference.concepts().assignments(),
            "concept assignments diverged on corpus seed {seed}"
        );
        assert_identical_search(&optimized, &reference, ds.folksonomy.num_tags());
    }
}

#[test]
fn variance_rule_builds_are_equivalent_too() {
    // The 95 %-variance concept selection exercises the adaptive solver's
    // `needed` closure; the kernel toggles must still be invisible.
    let ds = corpus(50, 40, 2_500, 31);
    let optimized_cfg = CubeLsiConfig {
        num_concepts: None,
        max_concepts: 24,
        max_als_iters: 5,
        seed: 77,
        ..Default::default()
    };
    let reference_cfg = CubeLsiConfig {
        naive_kmeans: true,
        materialized_gram: true,
        ..optimized_cfg.clone()
    };
    let optimized = CubeLsi::build(&ds.folksonomy, &optimized_cfg).unwrap();
    let reference = CubeLsi::build(&ds.folksonomy, &reference_cfg).unwrap();
    assert_eq!(
        optimized.concepts().num_concepts(),
        reference.concepts().num_concepts()
    );
    assert_eq!(
        optimized.concepts().assignments(),
        reference.concepts().assignments()
    );
    assert_identical_search(&optimized, &reference, ds.folksonomy.num_tags());
}

#[test]
fn full_reference_build_serves_same_corpus_sanely() {
    // The complete reference configuration (including the exhaustive
    // spectral solver) is a different — slower — trajectory, so bitwise
    // equality is not promised there; it must still produce a working
    // engine on the same corpus with sorted, deterministic rankings.
    let ds = corpus(40, 30, 2_000, 41);
    let cfg = CubeLsiConfig {
        num_concepts: Some(6),
        max_als_iters: 5,
        seed: 99,
        ..Default::default()
    }
    .with_reference_kernels();
    let a = CubeLsi::build(&ds.folksonomy, &cfg).unwrap();
    let b = CubeLsi::build(&ds.folksonomy, &cfg).unwrap();
    let tag = TagId::from_index(0);
    let ha = a.search_ids(&[tag], 10);
    let hb = b.search_ids(&[tag], 10);
    assert!(!ha.is_empty());
    assert_eq!(ha.len(), hb.len());
    for (x, y) in ha.iter().zip(hb.iter()) {
        assert_eq!(x.resource, y.resource);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    for w in ha.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}
