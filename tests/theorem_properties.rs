//! Property-based verification of the paper's two theorems on randomized
//! tensors — the correctness core of the whole reproduction:
//!
//! * **Theorem 1**: `D̂ᵢⱼ = √((Y⁽²⁾ᵢ−Y⁽²⁾ⱼ) Σ (Y⁽²⁾ᵢ−Y⁽²⁾ⱼ)ᵀ)` with
//!   `Σ = S₍₂₎S₍₂₎ᵀ` equals the brute-force Frobenius distance between
//!   mode-2 slices of the materialized `F̂`.
//! * **Theorem 2**: at the ALS fixed point, `Σ = Λ₂²`.

use cubelsi::core::{
    brute_force_distances, pairwise_distances_from_embedding, tag_embedding, SigmaSource,
};
use cubelsi::linalg::qr::orthonormality_error;
use cubelsi::linalg::subspace::SubspaceOptions;
use cubelsi::tensor::{tucker_als, DenseTensor3, SparseTensor3, TuckerConfig};
use proptest::prelude::*;

/// Strategy: a random sparse third-order tensor with at least one non-zero
/// per mode-2 index (so every "tag" exists).
fn tensor_strategy() -> impl Strategy<Value = SparseTensor3> {
    (2usize..=4, 2usize..=4, 2usize..=4)
        .prop_flat_map(|(d1, d2, d3)| {
            let extra = proptest::collection::vec((0..d1, 0..d2, 0..d3, 0.5f64..2.0), d2..(d2 * 4));
            (Just((d1, d2, d3)), extra)
        })
        .prop_map(|((d1, d2, d3), mut quads)| {
            // Guarantee every mode-2 slice is non-empty.
            for j in 0..d2 {
                quads.push((j % d1, j, j % d3, 1.0));
            }
            SparseTensor3::from_entries((d1, d2, d3), &quads).unwrap()
        })
}

fn converged_config(dims: (usize, usize, usize), trim: bool) -> TuckerConfig {
    let core = if trim {
        (
            dims.0.saturating_sub(1).max(1),
            dims.1, // keep the tag mode full so distances stay comparable
            dims.2.saturating_sub(1).max(1),
        )
    } else {
        dims
    };
    TuckerConfig {
        core_dims: core,
        max_iters: 60,
        fit_tol: 1e-13,
        subspace: SubspaceOptions::default(),
        fused_gram: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem1_matches_brute_force_on_random_tensors(tensor in tensor_strategy()) {
        let decomp = tucker_als(&tensor, &converged_config(tensor.dims(), true)).unwrap();
        let brute = brute_force_distances(&decomp).unwrap();
        let z = tag_embedding(&decomp, SigmaSource::CoreGram).unwrap();
        let fast = pairwise_distances_from_embedding(&z);
        prop_assert!(
            fast.matrix().approx_eq(brute.matrix(), 1e-6),
            "Theorem 1 violated\nfast: {:?}\nbrute: {:?}",
            fast.matrix(),
            brute.matrix()
        );
    }

    #[test]
    fn theorem2_sigma_sources_agree_at_convergence(tensor in tensor_strategy()) {
        let decomp = tucker_als(&tensor, &converged_config(tensor.dims(), true)).unwrap();
        let z1 = tag_embedding(&decomp, SigmaSource::CoreGram).unwrap();
        let z2 = tag_embedding(&decomp, SigmaSource::Lambda2).unwrap();
        let d1 = pairwise_distances_from_embedding(&z1);
        let d2 = pairwise_distances_from_embedding(&z2);
        prop_assert!(
            d1.matrix().approx_eq(d2.matrix(), 1e-5),
            "Theorem 2 violated\ncore: {:?}\nlambda2: {:?}",
            d1.matrix(),
            d2.matrix()
        );
    }

    #[test]
    fn tucker_factors_orthonormal_and_fit_valid(tensor in tensor_strategy()) {
        let decomp = tucker_als(&tensor, &converged_config(tensor.dims(), true)).unwrap();
        for y in &decomp.factors {
            prop_assert!(orthonormality_error(y) < 1e-7);
        }
        prop_assert!(decomp.fit <= 1.0 + 1e-9);
        // Norm identity: ‖F−F̂‖² = ‖F‖² − ‖S‖².
        let recon = decomp.reconstruct().unwrap();
        let err_sq = recon
            .sub(&tensor.to_dense())
            .unwrap()
            .frobenius_norm_sq();
        let identity = tensor.frobenius_norm_sq() - decomp.core.frobenius_norm_sq();
        prop_assert!((err_sq - identity).abs() < 1e-6, "{err_sq} vs {identity}");
    }

    #[test]
    fn full_rank_decomposition_is_lossless(tensor in tensor_strategy()) {
        let decomp = tucker_als(&tensor, &converged_config(tensor.dims(), false)).unwrap();
        prop_assert!(decomp.fit > 1.0 - 1e-6, "full-rank fit {}", decomp.fit);
        let recon = decomp.reconstruct().unwrap();
        prop_assert!(recon.approx_eq(&tensor.to_dense(), 1e-5));
    }

    #[test]
    fn unfold_fold_round_trip(
        dims in (1usize..=5, 1usize..=5, 1usize..=5),
        seed in 0u64..1000
    ) {
        let (d1, d2, d3) = dims;
        let t = DenseTensor3::from_fn(d1, d2, d3, |i, j, k| {
            ((i * 31 + j * 17 + k * 7 + seed as usize) % 23) as f64 - 11.0
        });
        for mode in 1..=3 {
            let u = t.unfold(mode);
            let back = DenseTensor3::fold(mode, &u, t.dims()).unwrap();
            prop_assert!(back.approx_eq(&t, 0.0), "mode {mode}");
        }
    }

    #[test]
    fn mode_product_matches_unfolded_matmul(
        dims in (2usize..=4, 2usize..=4, 2usize..=4),
        seed in 0u64..1000
    ) {
        let (d1, d2, d3) = dims;
        let t = DenseTensor3::from_fn(d1, d2, d3, |i, j, k| {
            ((i + 2 * j + 3 * k + seed as usize) % 7) as f64 * 0.5 - 1.0
        });
        for mode in 1..=3usize {
            let in_dim = t.dim(mode);
            let w = cubelsi::linalg::Matrix::from_fn(2, in_dim, |i, j| {
                ((i * 5 + j * 3 + seed as usize) % 11) as f64 / 11.0 - 0.5
            });
            let product = t.mode_product(mode, &w).unwrap();
            let reference = w.matmul(&t.unfold(mode)).unwrap();
            prop_assert!(product.unfold(mode).approx_eq(&reference, 1e-10));
        }
    }
}
