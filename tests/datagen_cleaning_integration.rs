//! Integration tests for the data-generation → raw-noise → cleaning →
//! ground-truth-rebinding loop that all experiments rely on.

use cubelsi::datagen::{generate, rawify, GeneratorConfig, RawNoiseConfig};
use cubelsi::eval::{generate_workload, WorkloadConfig};
use cubelsi::folksonomy::{clean, CleaningConfig, ResourceId, TagId};

fn base() -> cubelsi::datagen::GeneratedDataset {
    generate(&GeneratorConfig {
        users: 60,
        resources: 50,
        concepts: 7,
        assignments: 4_000,
        seed: 31,
        ..Default::default()
    })
}

#[test]
fn raw_clean_round_trip_preserves_core_signal() {
    let ds = base();
    let raw = rawify(&ds.folksonomy, &RawNoiseConfig::default());
    let (cleaned, report) = clean(&raw, &CleaningConfig::default());
    // Cleaning must strictly shrink the raw layer...
    assert!(cleaned.num_tags() < raw.num_tags());
    assert!(cleaned.num_users() < raw.num_users());
    // ...while keeping the bulk of genuine assignments.
    assert!(report.cleaned.assignments * 2 > ds.folksonomy.num_assignments());
    // And no system tags survive.
    for t in 0..cleaned.num_tags() {
        assert!(!cleaned
            .tag_name(TagId::from_index(t))
            .starts_with("system:"));
    }
}

#[test]
fn rebind_preserves_ground_truth_semantics() {
    let ds = base();
    let (cleaned, _) = clean(&ds.folksonomy, &CleaningConfig::default());
    let rebound = ds.rebind(cleaned);
    let f2 = &rebound.folksonomy;
    // Every surviving tag still maps to its original lexicon word.
    for t in 0..f2.num_tags() {
        let name = f2.tag_name(TagId::from_index(t));
        let word = rebound.truth.lexicon.word(rebound.truth.tag_words[t]);
        assert_eq!(word.name, name);
    }
    // Every surviving resource keeps the affinity vector of its namesake.
    for r in 0..f2.num_resources() {
        let name = f2.resource_name(ResourceId::from_index(r));
        let orig = ds.folksonomy.resource_id(name).unwrap();
        assert_eq!(
            rebound.truth.resource_affinity[r],
            ds.truth.resource_affinity[orig.index()]
        );
    }
    // Tag→concept mappings stay consistent with concept pools.
    for (t, concepts) in rebound.truth.tag_concepts.iter().enumerate() {
        let w = rebound.truth.tag_words[t];
        for &c in concepts {
            assert!(rebound.truth.concept_words[c].binary_search(&w).is_ok());
        }
    }
}

#[test]
fn rebind_then_workload_produces_answerable_queries() {
    let ds = base();
    let (cleaned, _) = clean(&ds.folksonomy, &CleaningConfig::default());
    let rebound = ds.rebind(cleaned);
    let queries = generate_workload(
        &rebound,
        &WorkloadConfig {
            num_queries: 24,
            ..Default::default()
        },
    );
    assert_eq!(queries.len(), 24);
    for q in &queries {
        assert!(!q.tags.is_empty());
        for t in &q.tags {
            assert!(t.index() < rebound.folksonomy.num_tags());
            // Query tags must actually occur in the cleaned corpus.
            assert!(!rebound.folksonomy.tag_assignments(*t).is_empty());
        }
        assert_eq!(q.relevance.len(), rebound.folksonomy.num_resources());
    }
    // The workload must contain a healthy fraction of answerable queries.
    let with_relevant = queries.iter().filter(|q| q.num_relevant() > 0).count();
    assert!(with_relevant * 10 >= queries.len() * 7);
}

#[test]
fn established_vocabulary_is_a_subset_of_concept_pools() {
    let ds = base();
    for (r, per_concept) in ds.truth.resource_words.iter().enumerate() {
        let mix: Vec<usize> = ds.truth.resource_affinity[r]
            .iter()
            .map(|&(c, _)| c)
            .collect();
        for (c, words) in per_concept {
            assert!(
                mix.contains(c),
                "resource {r} has words for foreign concept"
            );
            assert!(!words.is_empty());
            for w in words {
                assert!(
                    ds.truth.concept_words[*c].binary_search(w).is_ok(),
                    "established word outside the concept pool"
                );
            }
        }
    }
}

#[test]
fn taxonomy_jcn_agrees_with_concept_structure() {
    // Tags sharing a concept should on average be JCN-closer than tags in
    // different concepts — the property that makes Table III meaningful.
    let ds = base();
    let truth = &ds.truth;
    let n = truth.tag_words.len();
    let mut same_sum = 0.0;
    let mut same_n = 0usize;
    let mut diff_sum = 0.0;
    let mut diff_n = 0usize;
    for a in 0..n {
        if truth.tag_concepts[a].is_empty() {
            continue;
        }
        for b in (a + 1)..n {
            if truth.tag_concepts[b].is_empty() {
                continue;
            }
            let d = truth.tag_jcn(a, b);
            if truth.tags_share_concept(a, b) {
                same_sum += d;
                same_n += 1;
            } else {
                diff_sum += d;
                diff_n += 1;
            }
        }
    }
    assert!(same_n > 0 && diff_n > 0);
    assert!(
        same_sum / same_n as f64 <= diff_sum / diff_n as f64,
        "same-concept JCN must not exceed cross-concept JCN on average"
    );
}
