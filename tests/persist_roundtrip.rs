//! The persistence contract of `cubelsi_core::persist`:
//!
//! 1. **Round-trip bit-identity** — over randomized small corpora, a
//!    saved-then-loaded engine's `search_ids` output (resources, scores,
//!    tie-breaks) is bit-for-bit identical to the freshly built engine's.
//!    This is what makes `build` + `query` a pure deployment split, never
//!    an approximation.
//! 2. **Adversarial robustness** — truncated files, flipped bytes (CRC
//!    failure), wrong magic, and future format versions each yield a
//!    descriptive typed [`PersistError`], never a panic.

use cubelsi::core::{persist, CubeLsi, CubeLsiConfig, PersistError};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::{Folksonomy, TagId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_random(seed: u64) -> (Folksonomy, CubeLsi) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA57F_AC75);
    let ds = generate(&GeneratorConfig {
        users: rng.gen_range(15..40),
        resources: rng.gen_range(10..30),
        concepts: rng.gen_range(3..7),
        assignments: rng.gen_range(800..2_000),
        noise_rate: 0.05,
        seed,
        ..Default::default()
    });
    let config = CubeLsiConfig {
        core_dims: Some((6, 6, 6)),
        num_concepts: Some(rng.gen_range(3..7)),
        max_als_iters: 6,
        seed,
        ..Default::default()
    };
    let model = CubeLsi::build(&ds.folksonomy, &config).unwrap();
    (ds.folksonomy, model)
}

fn random_query(rng: &mut StdRng, num_tags: usize) -> Vec<TagId> {
    let len = rng.gen_range(1usize..=4);
    (0..len)
        .map(|_| TagId::from_index(rng.gen_range(0..num_tags)))
        .collect()
}

/// Proptest-style sweep: many seeds, many queries, several k values; the
/// loaded engine must be indistinguishable from the built one down to the
/// last score bit.
#[test]
fn round_trip_search_is_bit_identical_on_random_corpora() {
    for seed in 0..8u64 {
        let (folksonomy, built) = build_random(seed);
        let bytes = persist::save_to_vec(&built, &folksonomy);
        let loaded = persist::load_from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: load failed: {e}"));

        assert_eq!(loaded.folksonomy.stats(), folksonomy.stats());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0D0_F00D);
        for case in 0..25 {
            let query = random_query(&mut rng, folksonomy.num_tags());
            for k in [1usize, 5, 0] {
                let expect = built.search_ids(&query, k);
                let got = loaded.model.search_ids(&query, k);
                assert_eq!(
                    got.len(),
                    expect.len(),
                    "seed {seed} case {case} k {k}: result count"
                );
                for (rank, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
                    assert_eq!(
                        g.resource, e.resource,
                        "seed {seed} case {case} k {k} rank {rank}: resource"
                    );
                    assert_eq!(
                        g.score.to_bits(),
                        e.score.to_bits(),
                        "seed {seed} case {case} k {k} rank {rank}: score bits"
                    );
                }
            }
        }
    }
}

/// Saving is deterministic: the same engine always serializes to the same
/// bytes (there is no timestamp, map ordering, or other hidden state in
/// the format).
#[test]
fn save_is_deterministic() {
    let (folksonomy, model) = build_random(99);
    let a = persist::save_to_vec(&model, &folksonomy);
    let b = persist::save_to_vec(&model, &folksonomy);
    assert_eq!(a, b);
}

/// A second-generation artifact (save → load → save) is byte-identical to
/// the first: nothing is lost or reordered by a round trip.
#[test]
fn double_round_trip_is_byte_stable() {
    let (folksonomy, model) = build_random(7);
    let first = persist::save_to_vec(&model, &folksonomy);
    let loaded = persist::load_from_bytes(&first).unwrap();
    let second = persist::save_to_vec(&loaded.model, &loaded.folksonomy);
    assert_eq!(first, second);
}

#[test]
fn truncated_files_error_at_every_length() {
    let (folksonomy, model) = build_random(3);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    // Sample prefix lengths densely near the header/table and sparsely
    // through the payload (testing all ~100k prefixes would be slow).
    let mut cuts: Vec<usize> = (0..256.min(bytes.len())).collect();
    cuts.extend((256..bytes.len()).step_by(997));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = persist::load_from_bytes(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes must not load"));
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::BadMagic
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Malformed { .. }
            ),
            "prefix {cut}: unexpected error {err}"
        );
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn every_flipped_byte_is_detected() {
    let (folksonomy, model) = build_random(4);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    // Flip one byte at a sample of positions covering header, table and
    // every section payload; the loader must error (CRC catches payload
    // damage, structural checks catch header/table damage) — or, for the
    // handful of table bytes that only describe layout slack, load data
    // that still decodes consistently. It must never panic.
    for pos in (0..bytes.len()).step_by(131) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        match persist::load_from_bytes(&bad) {
            Err(e) => assert!(!e.to_string().is_empty(), "pos {pos}: empty error message"),
            Ok(loaded) => {
                // Extremely rare (e.g. flipping an unused high bit that
                // still passes CRC is impossible; this arm only fires if a
                // flip leaves the file semantically valid). Sanity-check
                // the result rather than fail blindly.
                assert_eq!(loaded.folksonomy.stats(), folksonomy.stats(), "pos {pos}");
            }
        }
    }
}

#[test]
fn payload_corruption_reports_checksum_mismatch() {
    let (folksonomy, model) = build_random(5);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    // Corrupt the very last byte: always inside the final section payload.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    match persist::load_from_bytes(&bad) {
        Err(PersistError::ChecksumMismatch { expected, got, .. }) => {
            assert_ne!(expected, got);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let (folksonomy, model) = build_random(6);
    let mut bytes = persist::save_to_vec(&model, &folksonomy);
    bytes[0] = b'X';
    assert!(matches!(
        persist::load_from_bytes(&bytes),
        Err(PersistError::BadMagic)
    ));
    // An unrelated small file is also BadMagic, not a panic.
    assert!(matches!(
        persist::load_from_bytes(b"not an artifact at all"),
        Err(PersistError::BadMagic)
    ));
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let (folksonomy, model) = build_random(8);
    let mut bytes = persist::save_to_vec(&model, &folksonomy);
    // The version field is bytes 8..12 (after the 8-byte magic).
    bytes[8..12].copy_from_slice(&(persist::FORMAT_VERSION + 1).to_le_bytes());
    match persist::load_from_bytes(&bytes) {
        Err(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, persist::FORMAT_VERSION + 1);
            assert_eq!(supported, persist::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn file_round_trip_through_disk() {
    let (folksonomy, model) = build_random(11);
    let path = std::env::temp_dir().join(format!(
        "cubelsi-roundtrip-{}-{:x}.cubelsi",
        std::process::id(),
        11u32
    ));
    persist::save_to_path(&path, &model, &folksonomy).unwrap();
    let loaded = persist::load_from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let tag = TagId::from_index(0);
    let a = model.search_ids(&[tag], 10);
    let b = loaded.model.search_ids(&[tag], 10);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.resource, y.resource);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
}
