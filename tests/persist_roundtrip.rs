//! The persistence contract of `cubelsi_core::persist`:
//!
//! 1. **Round-trip bit-identity** — over randomized small corpora, a
//!    saved-then-loaded engine's `search_ids` output (resources, scores,
//!    tie-breaks) is bit-for-bit identical to the freshly built engine's,
//!    under both the owned and the zero-copy load paths. This is what
//!    makes `build` + `query` a pure deployment split, never an
//!    approximation.
//! 2. **Adversarial robustness** — truncated files, flipped bytes (CRC
//!    failure), CRC-repaired semantic corruption inside the SoA index
//!    section (broken impact order, falsified block maxima) and inside
//!    the format-v3 compressed mirror (flipped bit widths, out-of-range
//!    quantization scales, understated impact bounds), misaligned
//!    sections, wrong magic, and future format versions each yield a
//!    descriptive typed [`PersistError`], never a panic or a silent
//!    misranking.

use cubelsi::core::{persist, AlignedBytes, CubeLsi, CubeLsiConfig, PersistError};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::{Folksonomy, TagId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn build_random(seed: u64) -> (Folksonomy, CubeLsi) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA57F_AC75);
    let ds = generate(&GeneratorConfig {
        users: rng.gen_range(15..40),
        resources: rng.gen_range(10..30),
        concepts: rng.gen_range(3..7),
        assignments: rng.gen_range(800..2_000),
        noise_rate: 0.05,
        seed,
        ..Default::default()
    });
    let config = CubeLsiConfig {
        core_dims: Some((6, 6, 6)),
        num_concepts: Some(rng.gen_range(3..7)),
        max_als_iters: 6,
        seed,
        ..Default::default()
    };
    let model = CubeLsi::build(&ds.folksonomy, &config).unwrap();
    (ds.folksonomy, model)
}

fn random_query(rng: &mut StdRng, num_tags: usize) -> Vec<TagId> {
    let len = rng.gen_range(1usize..=4);
    (0..len)
        .map(|_| TagId::from_index(rng.gen_range(0..num_tags)))
        .collect()
}

/// Proptest-style sweep: many seeds, many queries, several k values; the
/// loaded engine — through the owned *and* the zero-copy path — must be
/// indistinguishable from the built one down to the last score bit.
#[test]
fn round_trip_search_is_bit_identical_on_random_corpora() {
    for seed in 0..8u64 {
        let (folksonomy, built) = build_random(seed);
        let bytes = persist::save_to_vec(&built, &folksonomy);
        let loaded = persist::load_from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: load failed: {e}"));
        let zero_copy = persist::load_zero_copy(Arc::new(AlignedBytes::from_bytes(&bytes)))
            .unwrap_or_else(|e| panic!("seed {seed}: zero-copy load failed: {e}"));
        assert!(
            zero_copy.model.index().is_zero_copy(),
            "seed {seed}: hot arrays must borrow from the file buffer"
        );
        assert!(!loaded.model.index().is_zero_copy());

        assert_eq!(loaded.folksonomy.stats(), folksonomy.stats());
        assert_eq!(zero_copy.folksonomy.stats(), folksonomy.stats());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0D0_F00D);
        for case in 0..25 {
            let query = random_query(&mut rng, folksonomy.num_tags());
            for k in [1usize, 5, 0] {
                let expect = built.search_ids(&query, k);
                for (mode, artifact) in [("owned", &loaded), ("zero-copy", &zero_copy)] {
                    let got = artifact.model.search_ids(&query, k);
                    assert_eq!(
                        got.len(),
                        expect.len(),
                        "{mode} seed {seed} case {case} k {k}: result count"
                    );
                    for (rank, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
                        assert_eq!(
                            g.resource, e.resource,
                            "{mode} seed {seed} case {case} k {k} rank {rank}: resource"
                        );
                        assert_eq!(
                            g.score.to_bits(),
                            e.score.to_bits(),
                            "{mode} seed {seed} case {case} k {k} rank {rank}: score bits"
                        );
                    }
                }
            }
        }
    }
}

/// Saving is deterministic: the same engine always serializes to the same
/// bytes (there is no timestamp, map ordering, or other hidden state in
/// the format).
#[test]
fn save_is_deterministic() {
    let (folksonomy, model) = build_random(99);
    let a = persist::save_to_vec(&model, &folksonomy);
    let b = persist::save_to_vec(&model, &folksonomy);
    assert_eq!(a, b);
}

/// A second-generation artifact (save → load → save) is byte-identical to
/// the first: nothing is lost or reordered by a round trip.
#[test]
fn double_round_trip_is_byte_stable() {
    let (folksonomy, model) = build_random(7);
    let first = persist::save_to_vec(&model, &folksonomy);
    let loaded = persist::load_from_bytes(&first).unwrap();
    let second = persist::save_to_vec(&loaded.model, &loaded.folksonomy);
    assert_eq!(first, second);
}

#[test]
fn truncated_files_error_at_every_length() {
    let (folksonomy, model) = build_random(3);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    // Sample prefix lengths densely near the header/table and sparsely
    // through the payload (testing all ~100k prefixes would be slow).
    let mut cuts: Vec<usize> = (0..256.min(bytes.len())).collect();
    cuts.extend((256..bytes.len()).step_by(997));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = persist::load_from_bytes(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes must not load"));
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::BadMagic
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Malformed { .. }
            ),
            "prefix {cut}: unexpected error {err}"
        );
        assert!(!err.to_string().is_empty());
        // The zero-copy loader must fail just as gracefully.
        let zc = persist::load_zero_copy(Arc::new(AlignedBytes::from_bytes(&bytes[..cut])));
        assert!(zc.is_err(), "zero-copy prefix of {cut} bytes must not load");
    }
}

// ---------------------------------------------------------------------------
// SoA index section adversaries
// ---------------------------------------------------------------------------

/// Locates a section's table entry; returns
/// `(entry offset, payload offset, payload length)`.
fn find_section(bytes: &[u8], id: u32) -> (usize, usize, usize) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..count {
        let e = persist::HEADER_LEN + i * persist::TABLE_ENTRY_LEN;
        if u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == id {
            let off = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 12..e + 20].try_into().unwrap()) as usize;
            return (e, off, len);
        }
    }
    panic!("section {id} not found");
}

/// Re-records a section's CRC after deliberate payload surgery, so the
/// corruption reaches the semantic validators instead of the checksum.
fn refresh_crc(bytes: &mut [u8], entry: usize, off: usize, len: usize) {
    let crc = persist::crc32(&bytes[off..off + len]);
    bytes[entry + 20..entry + 24].copy_from_slice(&crc.to_le_bytes());
}

/// The byte offsets (relative to the SoA payload start) of every array
/// boundary, recomputed from the documented v2 layout: 6-field u64
/// header, then idf, norms, rv_offsets, rv_concepts (padded), rv_weights,
/// post_offsets, post_ids (padded), post_scores, block_offsets,
/// block_max, max_impact.
struct SoaOffsets {
    boundaries: Vec<usize>,
    post_scores: usize,
    block_max: usize,
    n_blocks: usize,
}

fn soa_offsets(payload: &[u8]) -> SoaOffsets {
    let field =
        |i: usize| u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap()) as usize;
    let (r, c, rv_nnz, n_post, n_blocks) = (field(0), field(1), field(3), field(4), field(5));
    assert_eq!(field(2), cubelsi::core::BLOCK_LEN, "block length field");
    // (array byte length, pad-to-8 afterwards) in on-disk order.
    let arrays: [(usize, bool); 11] = [
        (c * 8, false),        // idf
        (r * 8, false),        // resource_norms
        ((r + 1) * 8, false),  // rv_offsets
        (rv_nnz * 4, true),    // rv_concepts
        (rv_nnz * 8, false),   // rv_weights
        ((c + 1) * 8, false),  // post_offsets
        (n_post * 4, true),    // post_ids
        (n_post * 8, false),   // post_scores
        ((c + 1) * 8, false),  // block_offsets
        (n_blocks * 8, false), // block_max
        (c * 8, false),        // max_impact
    ];
    let mut cursor = 48usize;
    let mut boundaries = vec![cursor];
    for (bytes, pad) in arrays {
        cursor += bytes;
        if pad {
            cursor = cursor.div_ceil(8) * 8;
        }
        boundaries.push(cursor);
    }
    assert_eq!(cursor, payload.len(), "layout must cover the payload");
    SoaOffsets {
        // boundaries[i] = start of array i (0-based); boundaries[7] is
        // post_scores, boundaries[9] is block_max.
        post_scores: boundaries[7],
        block_max: boundaries[9],
        boundaries,
        n_blocks,
    }
}

fn assert_both_loaders_reject(bytes: &[u8], what: &str) -> PersistError {
    let err = persist::load_from_bytes(bytes)
        .err()
        .unwrap_or_else(|| panic!("{what}: owned load must fail"));
    let zc = persist::load_zero_copy(Arc::new(AlignedBytes::from_bytes(bytes)));
    assert!(zc.is_err(), "{what}: zero-copy load must fail");
    err
}

/// Truncating the file at (and just past) every SoA array boundary must
/// produce a typed error from both loaders — never a panic.
#[test]
fn truncation_at_every_soa_array_boundary_errors() {
    let (folksonomy, model) = build_random(31);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    let (_, off, len) = find_section(&bytes, persist::SECTION_INDEX_SOA);
    let offsets = soa_offsets(&bytes[off..off + len]);
    for &b in &offsets.boundaries {
        // A cut at or past the end of the recorded payload is not a
        // truncation (trailing file padding is not covered by the length),
        // so only strictly-inside cuts are adversarial.
        for cut in [off + b, off + b + 4] {
            if cut >= off + len {
                continue;
            }
            let err = assert_both_loaders_reject(&bytes[..cut], &format!("cut at {cut}"));
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "cut {cut}: unexpected error {err}"
            );
        }
    }
}

/// A flipped byte inside the block-max array is caught by the CRC; the
/// same flip with a freshly recorded CRC is caught by the semantic
/// validator (block max must equal its block's head impact). Either way:
/// a typed error, never a silent misranking.
#[test]
fn flipped_block_max_bytes_are_detected() {
    let (folksonomy, model) = build_random(32);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    let (entry, off, len) = find_section(&bytes, persist::SECTION_INDEX_SOA);
    let offsets = soa_offsets(&bytes[off..off + len]);
    assert!(offsets.n_blocks > 0, "corpus must produce posting blocks");

    for block in 0..offsets.n_blocks {
        let pos = off + offsets.block_max + block * 8 + 3;
        // CRC catches the raw flip.
        let mut bad = bytes.clone();
        bad[pos] ^= 0x5A;
        match assert_both_loaders_reject(&bad, &format!("block {block} flip")) {
            PersistError::ChecksumMismatch { section, .. } => {
                assert_eq!(section, persist::SECTION_INDEX_SOA);
            }
            other => panic!("block {block}: expected ChecksumMismatch, got {other}"),
        }
        // The semantic validator catches the CRC-repaired flip.
        refresh_crc(&mut bad, entry, off, len);
        match assert_both_loaders_reject(&bad, &format!("block {block} flip + CRC fix")) {
            PersistError::Malformed { section, detail } => {
                assert_eq!(section, persist::SECTION_INDEX_SOA);
                assert!(!detail.is_empty());
            }
            other => panic!("block {block}: expected Malformed, got {other}"),
        }
    }
}

/// CRC-repaired corruption of the impact order itself (a zeroed head
/// score) must be rejected by the order/consistency validation — this is
/// the "never misrank" guarantee for hostile-but-checksummed files.
#[test]
fn broken_impact_order_is_rejected_after_crc_repair() {
    let (folksonomy, model) = build_random(33);
    let mut bytes = persist::save_to_vec(&model, &folksonomy);
    let (entry, off, len) = find_section(&bytes, persist::SECTION_INDEX_SOA);
    let offsets = soa_offsets(&bytes[off..off + len]);
    // Zero the first posting score: its list is no longer descending (or,
    // for a single-posting list, disagrees with block max / max impact).
    let pos = off + offsets.post_scores;
    bytes[pos..pos + 8].copy_from_slice(&0.0f64.to_le_bytes());
    refresh_crc(&mut bytes, entry, off, len);
    match assert_both_loaders_reject(&bytes, "zeroed head score") {
        PersistError::Malformed { section, .. } => {
            assert_eq!(section, persist::SECTION_INDEX_SOA);
        }
        other => panic!("expected Malformed, got {other}"),
    }
}

/// A section table pointing the SoA payload at a non-8-aligned offset is
/// a typed [`PersistError::MisalignedSection`] from both loaders — the
/// zero-copy path must never view misaligned floats, and the owned path
/// enforces the same contract for format strictness.
#[test]
fn misaligned_soa_section_is_a_typed_error() {
    let (folksonomy, model) = build_random(34);
    let mut bytes = persist::save_to_vec(&model, &folksonomy);
    let (entry, off, len) = find_section(&bytes, persist::SECTION_INDEX_SOA);
    // Shift the recorded payload offset back by 4: same length, CRC
    // re-recorded over the shifted window, so the only defect left is the
    // alignment.
    let new_off = off - 4;
    bytes[entry + 4..entry + 12].copy_from_slice(&(new_off as u64).to_le_bytes());
    refresh_crc(&mut bytes, entry, new_off, len);
    match assert_both_loaders_reject(&bytes, "shifted section offset") {
        PersistError::MisalignedSection { section, offset } => {
            assert_eq!(section, persist::SECTION_INDEX_SOA);
            assert_eq!(offset as usize, new_off);
        }
        other => panic!("expected MisalignedSection, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// Compressed index section (format v3) adversaries
// ---------------------------------------------------------------------------

/// The byte offsets (relative to the compressed payload start) of every
/// array boundary, recomputed from the documented v3 layout: 4-field u64
/// header, then blk_pack_start, blk_base, blk_scale, blk_offset,
/// blk_bits, quant, packed_ids — every array padded to 8 bytes.
struct CompressedOffsets {
    boundaries: Vec<usize>,
    blk_scale: usize,
    blk_bits: usize,
    quant: usize,
    n_blocks: usize,
    n_postings: usize,
}

fn compressed_offsets(payload: &[u8]) -> CompressedOffsets {
    let field =
        |i: usize| u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap()) as usize;
    let (n_blocks, n_postings, packed_len) = (field(0), field(1), field(2));
    assert_eq!(field(3), cubelsi::core::BLOCK_LEN, "block length field");
    let arrays: [usize; 7] = [
        (n_blocks + 1) * 8, // blk_pack_start
        n_blocks * 4,       // blk_base
        n_blocks * 4,       // blk_scale
        n_blocks * 4,       // blk_offset
        n_blocks,           // blk_bits
        n_postings,         // quant
        packed_len,         // packed_ids
    ];
    let mut cursor = 32usize;
    let mut boundaries = vec![cursor];
    for bytes in arrays {
        cursor = (cursor + bytes).div_ceil(8) * 8;
        boundaries.push(cursor);
    }
    assert_eq!(cursor, payload.len(), "layout must cover the payload");
    CompressedOffsets {
        blk_scale: boundaries[2],
        blk_bits: boundaries[4],
        quant: boundaries[5],
        boundaries,
        n_blocks,
        n_postings,
    }
}

/// Compressed (format v3) artifacts round-trip deterministically and
/// byte-stably, and both load paths answer bit-identically to the
/// uncompressed artifact over random corpora.
#[test]
fn compressed_round_trip_is_bit_identical_and_byte_stable() {
    for seed in [13u64, 14, 15] {
        let (folksonomy, built) = build_random(seed);
        let bytes = persist::save_to_vec_with(&built, &folksonomy, true);
        assert_eq!(
            bytes,
            persist::save_to_vec_with(&built, &folksonomy, true),
            "seed {seed}: compressed save must be deterministic"
        );
        let loaded = persist::load_from_bytes(&bytes).unwrap();
        assert_eq!(
            bytes,
            persist::save_to_vec_with(&loaded.model, &loaded.folksonomy, true),
            "seed {seed}: compressed double round-trip must be byte-stable"
        );
        let zero_copy =
            persist::load_zero_copy(Arc::new(AlignedBytes::from_bytes(&bytes))).unwrap();
        assert!(zero_copy.model.index().is_zero_copy());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_FFEE);
        for _ in 0..15 {
            let query = random_query(&mut rng, folksonomy.num_tags());
            for k in [1usize, 5, 0] {
                let expect = built.search_ids(&query, k);
                for (mode, artifact) in [("owned", &loaded), ("zero-copy", &zero_copy)] {
                    let got = artifact.model.search_ids(&query, k);
                    assert_eq!(got.len(), expect.len(), "{mode} seed {seed} k {k}");
                    for (g, e) in got.iter().zip(expect.iter()) {
                        assert_eq!(g.resource, e.resource, "{mode} seed {seed} k {k}");
                        assert_eq!(
                            g.score.to_bits(),
                            e.score.to_bits(),
                            "{mode} seed {seed} k {k}"
                        );
                    }
                }
            }
        }
    }
}

/// Truncating the file at (and just past) every compressed-array boundary
/// must produce a typed error from both loaders — never a panic or an
/// OOM-sized allocation.
#[test]
fn truncation_at_every_compressed_array_boundary_errors() {
    let (folksonomy, model) = build_random(35);
    let bytes = persist::save_to_vec_with(&model, &folksonomy, true);
    let (_, off, len) = find_section(&bytes, persist::SECTION_INDEX_COMPRESSED);
    let offsets = compressed_offsets(&bytes[off..off + len]);
    for &b in &offsets.boundaries {
        for cut in [off + b, off + b + 4] {
            if cut >= off + len {
                continue;
            }
            let err = assert_both_loaders_reject(&bytes[..cut], &format!("cut at {cut}"));
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "cut {cut}: unexpected error {err}"
            );
        }
    }
}

/// A flipped bit-width byte is caught by the CRC; the same flip with a
/// freshly recorded CRC is caught by the mirror validator (the packed-run
/// chain no longer matches, or the width exceeds 32) — it can never make
/// the compressed strategy decode different ids than the exact arrays.
#[test]
fn flipped_bit_width_byte_is_rejected() {
    let (folksonomy, model) = build_random(36);
    let bytes = persist::save_to_vec_with(&model, &folksonomy, true);
    let (entry, off, len) = find_section(&bytes, persist::SECTION_INDEX_COMPRESSED);
    let offsets = compressed_offsets(&bytes[off..off + len]);
    assert!(offsets.n_blocks > 0, "corpus must produce posting blocks");

    let pos = off + offsets.blk_bits;
    let orig = bytes[pos];
    for (what, patch) in [
        // A width over 32 bits can never be honest.
        ("width 33 > 32", 33u8),
        // Shifting the width by 8 moves this block's packed-run length by
        // exactly its posting count, so the recorded run chain must break.
        (
            "width shifted by 8",
            if orig < 25 { orig + 8 } else { orig - 8 },
        ),
    ] {
        let mut bad = bytes.clone();
        bad[pos] = patch;
        match assert_both_loaders_reject(&bad, what) {
            PersistError::ChecksumMismatch { section, .. } => {
                assert_eq!(section, persist::SECTION_INDEX_COMPRESSED, "{what}");
            }
            other => panic!("{what}: expected ChecksumMismatch, got {other}"),
        }
        refresh_crc(&mut bad, entry, off, len);
        match assert_both_loaders_reject(&bad, &format!("{what} + CRC fix")) {
            PersistError::Malformed { section, detail } => {
                assert_eq!(section, persist::SECTION_INDEX_COMPRESSED, "{what}");
                assert!(!detail.is_empty());
            }
            other => panic!("{what}: expected Malformed, got {other}"),
        }
    }
}

/// CRC-repaired corruption of the quantization constants and the
/// per-posting quantized impacts: a non-finite or negative scale, and a
/// quantized value whose dequantized bound understates the exact impact,
/// are each rejected — the "quantize to reject" side can therefore never
/// skip a posting the exact engine would keep.
#[test]
fn out_of_range_quantization_is_rejected_after_crc_repair() {
    let (folksonomy, model) = build_random(37);
    let bytes = persist::save_to_vec_with(&model, &folksonomy, true);
    let (entry, off, len) = find_section(&bytes, persist::SECTION_INDEX_COMPRESSED);
    let offsets = compressed_offsets(&bytes[off..off + len]);
    assert!(offsets.n_blocks > 0 && offsets.n_postings > 0);

    for (what, pos, patch) in [
        ("NaN scale", off + offsets.blk_scale, f32::NAN.to_le_bytes()),
        (
            "negative scale",
            off + offsets.blk_scale,
            (-1.0f32).to_le_bytes(),
        ),
    ] {
        let mut bad = bytes.clone();
        bad[pos..pos + 4].copy_from_slice(&patch);
        refresh_crc(&mut bad, entry, off, len);
        match assert_both_loaders_reject(&bad, what) {
            PersistError::Malformed { section, detail } => {
                assert_eq!(section, persist::SECTION_INDEX_COMPRESSED, "{what}");
                assert!(!detail.is_empty());
            }
            other => panic!("{what}: expected Malformed, got {other}"),
        }
    }

    // Understate one quantized impact (quant values are upper bounds, so
    // lowering a nonzero one below its exact impact must be caught).
    let quant_start = off + offsets.quant;
    let pos = (0..offsets.n_postings)
        .map(|j| quant_start + j)
        .find(|&p| bytes[p] > 0)
        .expect("some posting quantizes above 0");
    let mut bad = bytes.clone();
    bad[pos] = 0;
    refresh_crc(&mut bad, entry, off, len);
    match assert_both_loaders_reject(&bad, "understated quantized impact") {
        PersistError::Malformed { section, detail } => {
            assert_eq!(section, persist::SECTION_INDEX_COMPRESSED);
            assert!(detail.contains("bound"), "detail: {detail}");
        }
        other => panic!("expected Malformed, got {other}"),
    }
}

/// The every-flipped-byte sweep over a compressed artifact: same contract
/// as the uncompressed sweep — typed error or consistent load, no panic.
#[test]
fn every_flipped_byte_is_detected_in_compressed_artifacts() {
    let (folksonomy, model) = build_random(38);
    let bytes = persist::save_to_vec_with(&model, &folksonomy, true);
    for pos in (0..bytes.len()).step_by(131) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        match persist::load_from_bytes(&bad) {
            Err(e) => assert!(!e.to_string().is_empty(), "pos {pos}: empty error message"),
            Ok(loaded) => {
                assert_eq!(loaded.folksonomy.stats(), folksonomy.stats(), "pos {pos}");
            }
        }
    }
}

#[test]
fn every_flipped_byte_is_detected() {
    let (folksonomy, model) = build_random(4);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    // Flip one byte at a sample of positions covering header, table and
    // every section payload; the loader must error (CRC catches payload
    // damage, structural checks catch header/table damage) — or, for the
    // handful of table bytes that only describe layout slack, load data
    // that still decodes consistently. It must never panic.
    for pos in (0..bytes.len()).step_by(131) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        match persist::load_from_bytes(&bad) {
            Err(e) => assert!(!e.to_string().is_empty(), "pos {pos}: empty error message"),
            Ok(loaded) => {
                // Extremely rare (e.g. flipping an unused high bit that
                // still passes CRC is impossible; this arm only fires if a
                // flip leaves the file semantically valid). Sanity-check
                // the result rather than fail blindly.
                assert_eq!(loaded.folksonomy.stats(), folksonomy.stats(), "pos {pos}");
            }
        }
    }
}

/// The *exhaustive* hostile-byte sweep: over a deliberately tiny corpus
/// (so the O(len²) total work stays fast), flip one byte at **every**
/// offset of a v2 and a v3 artifact and feed the mutant to both loaders
/// under `catch_unwind`. Each mutant must either return a typed error
/// with a non-empty message, or — possible only where the flip lands in
/// bytes the format does not interpret, such as inter-section padding
/// not covered by a section CRC — load an engine whose `search_ids`
/// output is bit-for-bit identical to the pristine build. A panic at any
/// offset fails the sweep with the offset named.
#[test]
fn exhaustive_single_byte_flips_never_panic_either_loader() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let ds = generate(&GeneratorConfig {
        users: 8,
        resources: 10,
        concepts: 3,
        assignments: 120,
        seed: 41,
        ..Default::default()
    });
    let folksonomy = &ds.folksonomy;
    let config = CubeLsiConfig {
        core_dims: Some((3, 3, 3)),
        num_concepts: Some(3),
        max_als_iters: 3,
        seed: 41,
        ..Default::default()
    };
    let model = CubeLsi::build(folksonomy, &config).unwrap();
    let queries: Vec<Vec<TagId>> = (0..4usize)
        .map(|t| vec![TagId::from_index(t % folksonomy.num_tags())])
        .collect();
    let expect: Vec<_> = queries.iter().map(|q| model.search_ids(q, 5)).collect();

    for (format, compress) in [("v2", false), ("v3", true)] {
        let bytes = persist::save_to_vec_with(&model, folksonomy, compress);
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            // Rotate the flipped bit with the offset so the sweep probes
            // every bit lane, not just one mask.
            bad[pos] ^= 1u8 << (pos % 8);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let owned = persist::load_from_bytes(&bad);
                let zc = persist::load_zero_copy(Arc::new(AlignedBytes::from_bytes(&bad)));
                (owned, zc)
            }))
            .unwrap_or_else(|_| panic!("{format}: loader panicked at offset {pos}"));
            for (mode, result) in [("owned", outcome.0), ("zero-copy", outcome.1)] {
                match result {
                    Err(e) => assert!(
                        !e.to_string().is_empty(),
                        "{format} {mode} offset {pos}: empty error message"
                    ),
                    Ok(loaded) => {
                        for (query, expect) in queries.iter().zip(&expect) {
                            let got = loaded.model.search_ids(query, 5);
                            assert_eq!(
                                got.len(),
                                expect.len(),
                                "{format} {mode} offset {pos}: result count diverged"
                            );
                            for (g, e) in got.iter().zip(expect.iter()) {
                                assert_eq!(
                                    (g.resource, g.score.to_bits()),
                                    (e.resource, e.score.to_bits()),
                                    "{format} {mode} offset {pos}: ranking diverged"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn payload_corruption_reports_checksum_mismatch() {
    let (folksonomy, model) = build_random(5);
    let bytes = persist::save_to_vec(&model, &folksonomy);
    // Corrupt the very last byte: always inside the final section payload.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    match persist::load_from_bytes(&bad) {
        Err(PersistError::ChecksumMismatch { expected, got, .. }) => {
            assert_ne!(expected, got);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let (folksonomy, model) = build_random(6);
    let mut bytes = persist::save_to_vec(&model, &folksonomy);
    bytes[0] = b'X';
    assert!(matches!(
        persist::load_from_bytes(&bytes),
        Err(PersistError::BadMagic)
    ));
    // An unrelated small file is also BadMagic, not a panic.
    assert!(matches!(
        persist::load_from_bytes(b"not an artifact at all"),
        Err(PersistError::BadMagic)
    ));
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let (folksonomy, model) = build_random(8);
    let mut bytes = persist::save_to_vec(&model, &folksonomy);
    // The version field is bytes 8..12 (after the 8-byte magic).
    bytes[8..12].copy_from_slice(&(persist::FORMAT_VERSION + 1).to_le_bytes());
    match persist::load_from_bytes(&bytes) {
        Err(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, persist::FORMAT_VERSION + 1);
            assert_eq!(supported, persist::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn file_round_trip_through_disk() {
    let (folksonomy, model) = build_random(11);
    let path = std::env::temp_dir().join(format!(
        "cubelsi-roundtrip-{}-{:x}.cubelsi",
        std::process::id(),
        11u32
    ));
    persist::save_to_path(&path, &model, &folksonomy).unwrap();
    let loaded = persist::load_from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let tag = TagId::from_index(0);
    let a = model.search_ids(&[tag], 10);
    let b = loaded.model.search_ids(&[tag], 10);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.resource, y.resource);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
}
