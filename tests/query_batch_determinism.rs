//! Pins the determinism claim of `search_batch`: rankings — resources,
//! bit-exact scores, and tie-breaks — are identical at every worker
//! pool size, for both pruning strategies. Batching splits the query
//! slice into contiguous index ranges fanned across the persistent
//! executor, each participant runs the same sequential per-query code
//! on its own pool-cached session, and every query writes into its own
//! result slot, so the pool size can never influence a single float
//! operation. Also pins the fan-out clamp: a batch smaller than the
//! pool engages at most one task per query. This file holds exactly one
//! test because it mutates the process-global worker-pool size.

use cubelsi::core::{ConceptIndex, ConceptModel, PruningStrategy, QueryEngine, RankedResource};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::TagId;
use cubelsi::linalg::parallel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_identical(a: &[RankedResource], b: &[RankedResource], context: &str) {
    assert_eq!(a.len(), b.len(), "length differs: {context}");
    for (rank, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.resource, y.resource, "resource at rank {rank}: {context}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "score bits at rank {rank}: {context}"
        );
    }
}

#[test]
fn search_batch_is_bit_identical_across_thread_counts() {
    for (seed, users, resources, assignments, num_concepts) in
        [(51u64, 40, 150, 5_000, 6), (52, 80, 400, 9_000, 3)]
    {
        let ds = generate(&GeneratorConfig {
            users,
            resources,
            concepts: 8,
            assignments,
            seed,
            ..Default::default()
        });
        let f = &ds.folksonomy;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
        let model_assignments: Vec<usize> = (0..f.num_tags())
            .map(|_| rng.gen_range(0..num_concepts))
            .collect();
        let model = ConceptModel::from_assignments(model_assignments, 1.0);
        let mut engine = QueryEngine::new(ConceptIndex::build(f, &model));

        // Enough queries that 8 workers actually engage (the batcher
        // wants >= 32 queries per worker before it fans out).
        let queries: Vec<Vec<TagId>> = (0..300)
            .map(|_| {
                let len = rng.gen_range(1usize..=4);
                (0..len)
                    .map(|_| TagId::from_index(rng.gen_range(0..f.num_tags())))
                    .collect()
            })
            .collect();

        for strategy in [PruningStrategy::MaxScore, PruningStrategy::BlockMax] {
            engine.set_strategy(strategy);
            for &k in &[1usize, 10, 0] {
                parallel::set_num_threads(1);
                let baseline = engine.search_batch(&model, &queries, k);
                // The single-thread batch must match the plain sequential
                // session loop, query for query.
                let mut session = engine.session();
                let mut out = Vec::new();
                for (qi, q) in queries.iter().enumerate() {
                    engine.search_tags_with(&mut session, &model, q, k, &mut out);
                    assert_identical(
                        &out,
                        &baseline[qi],
                        &format!("{strategy:?} seed={seed} k={k} q#{qi} sequential-vs-batch(1)"),
                    );
                }
                for threads in [2usize, 8] {
                    parallel::set_num_threads(threads);
                    let got = engine.search_batch(&model, &queries, k);
                    assert_eq!(got.len(), baseline.len());
                    for (qi, (g, b)) in got.iter().zip(baseline.iter()).enumerate() {
                        assert_identical(
                            g,
                            b,
                            &format!("{strategy:?} seed={seed} k={k} q#{qi} threads={threads}"),
                        );
                    }
                }
                parallel::set_num_threads(0);
            }
        }

        // Oversubscription regression: a batch smaller than the pool
        // must clamp its fan-out to the batch size — idle workers never
        // receive an empty range — and still answer bit-identically.
        let small: Vec<Vec<TagId>> = queries.iter().take(3).cloned().collect();
        parallel::set_num_threads(1);
        let small_baseline = engine.search_batch(&model, &small, 10);
        parallel::set_num_threads(8);
        let small_got = engine.search_batch(&model, &small, 10);
        assert_eq!(small_got.len(), small_baseline.len());
        for (qi, (g, b)) in small_got.iter().zip(small_baseline.iter()).enumerate() {
            assert_identical(g, b, &format!("seed={seed} small-batch q#{qi} threads=8"));
        }
        parallel::set_num_threads(0);
    }
    // Restore the machine default for any test harness that follows.
    parallel::set_num_threads(0);
}
