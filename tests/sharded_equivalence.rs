//! The sharded-serving correctness contract: a [`ShardSet`]'s
//! scatter-gather answers must be **bit-identical** — scores, order,
//! tie-breaks — to a single unsharded [`QueryEngine`] over the same
//! corpus, for every shard count, every pruning strategy, hard and soft
//! concept assignments, sequential/scatter/adaptive/batched execution at
//! pool sizes {1, 2, 8}, artifacts loaded owned and zero-copy, and
//! immediately after a hot reload (including the pooled paths across the
//! generation swap). This is what makes sharding a pure scaling move,
//! never an approximation.

use cubelsi::core::shard::{self, LoadMode, ShardSet, ShardedEngine};
use cubelsi::core::{
    persist, ConceptAssignment, ConceptIndex, ConceptModel, CubeLsi, CubeLsiConfig,
    PruningStrategy, QueryEngine, RankedResource, SoftConceptModel, SoftConfig,
};
use cubelsi::datagen::{generate, GeneratorConfig};
use cubelsi::folksonomy::{Folksonomy, TagId};
use cubelsi::linalg::{parallel, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STRATEGIES: [PruningStrategy; 3] = [
    PruningStrategy::MaxScore,
    PruningStrategy::BlockMax,
    PruningStrategy::CompressedBlockMax,
];
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn random_corpus(seed: u64, users: usize, resources: usize, assignments: usize) -> Folksonomy {
    generate(&GeneratorConfig {
        users,
        resources,
        concepts: 8,
        assignments,
        seed,
        ..Default::default()
    })
    .folksonomy
}

fn random_hard_model(rng: &mut StdRng, num_tags: usize, num_concepts: usize) -> ConceptModel {
    let assignments: Vec<usize> = (0..num_tags)
        .map(|_| rng.gen_range(0..num_concepts))
        .collect();
    ConceptModel::from_assignments(assignments, 1.0)
}

fn random_soft_model(rng: &mut StdRng, num_tags: usize, num_concepts: usize) -> SoftConceptModel {
    let d = 3;
    let embedding = Matrix::from_fn(num_tags, d, |_, _| rng.gen::<f64>());
    let centroids = Matrix::from_fn(num_concepts, d, |_, _| rng.gen::<f64>());
    SoftConceptModel::from_embedding(&embedding, &centroids, &SoftConfig::default())
}

fn random_query(rng: &mut StdRng, num_tags: usize) -> Vec<TagId> {
    let len = rng.gen_range(1usize..=4);
    (0..len)
        .map(|_| TagId::from_index(rng.gen_range(0..num_tags)))
        .collect()
}

fn assert_identical(sharded: &[RankedResource], single: &[RankedResource], context: &str) {
    assert_eq!(sharded.len(), single.len(), "length differs: {context}");
    for (i, (s, u)) in sharded.iter().zip(single.iter()).enumerate() {
        assert_eq!(s.resource, u.resource, "resource at rank {i}: {context}");
        assert_eq!(
            s.score.to_bits(),
            u.score.to_bits(),
            "score at rank {i} ({} vs {}): {context}",
            s.score,
            u.score
        );
    }
}

/// Checks one (engine, model) pair across shard counts, k values, and
/// the sequential + scatter execution modes.
fn check_sharded(
    f: &Folksonomy,
    engine: &QueryEngine,
    hard_for_set: &ConceptModel,
    model: &dyn ConceptAssignment,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_tags = f.num_tags();
    let queries: Vec<Vec<TagId>> = (0..25).map(|_| random_query(&mut rng, num_tags)).collect();
    for &n in &SHARD_COUNTS {
        let set = ShardSet::from_parts(
            shard::partition_engines(engine, n),
            f.clone(),
            hard_for_set.clone(),
        )
        .unwrap();
        let mut session = set.session();
        let mut out = Vec::new();
        for &k in &[1usize, 5, 0, engine.index().num_resources() + 3] {
            for (qi, q) in queries.iter().enumerate() {
                let single = engine.search_tags(model, q, k);
                set.search_tags_with(&mut session, model, q, k, &mut out);
                assert_identical(
                    &out,
                    &single,
                    &format!("seed={seed} shards={n} k={k} query#{qi} {q:?}"),
                );
                let scattered = set.search_tags_scatter(model, q, k);
                assert_identical(
                    &scattered,
                    &single,
                    &format!("scatter seed={seed} shards={n} k={k} query#{qi}"),
                );
                // The adaptive dispatcher may route through the coalesced
                // mirror, the sequential scatter, or the pooled fan-out —
                // every route must stay bit-identical.
                set.search_tags_auto(&mut session, model, q, k, &mut out);
                assert_identical(
                    &out,
                    &single,
                    &format!("auto seed={seed} shards={n} k={k} query#{qi}"),
                );
            }
        }
    }
}

#[test]
fn sharded_equals_single_engine_hard_assignments() {
    for (seed, users, resources, assignments) in [
        (11u64, 20, 15, 400),
        (12, 50, 80, 2_500),
        (13, 30, 200, 4_000),
    ] {
        let f = random_corpus(seed, users, resources, assignments);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let model = random_hard_model(&mut rng, f.num_tags(), 6);
        for strategy in STRATEGIES {
            let engine = QueryEngine::with_strategy(ConceptIndex::build(&f, &model), strategy);
            check_sharded(&f, &engine, &model, &model, seed);
        }
    }
}

#[test]
fn sharded_equals_single_engine_soft_assignments() {
    let f = random_corpus(21, 40, 60, 2_000);
    let mut rng = StdRng::seed_from_u64(77);
    let soft = random_soft_model(&mut rng, f.num_tags(), 5);
    let hard = soft.harden();
    for strategy in STRATEGIES {
        let engine = QueryEngine::with_strategy(ConceptIndex::build(&f, &soft), strategy);
        check_sharded(&f, &engine, &hard, &soft, 21);
    }
}

/// `search_batch` over a sharded set must be bit-identical to the single
/// engine at every thread count — including a thread-count change mid
/// flight, which is what a production pool resize looks like.
#[test]
fn sharded_batch_is_thread_count_invariant() {
    let f = random_corpus(31, 40, 120, 3_000);
    let mut rng = StdRng::seed_from_u64(31);
    let model = random_hard_model(&mut rng, f.num_tags(), 6);
    let engine = QueryEngine::new(ConceptIndex::build(&f, &model));
    let queries: Vec<Vec<TagId>> = (0..96)
        .map(|_| random_query(&mut rng, f.num_tags()))
        .collect();
    let single: Vec<Vec<RankedResource>> = queries
        .iter()
        .map(|q| engine.search_tags(&model, q, 10))
        .collect();
    for &n in &SHARD_COUNTS {
        let set = ShardSet::from_parts(
            shard::partition_engines(&engine, n),
            f.clone(),
            model.clone(),
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            parallel::set_num_threads(threads);
            let batch = set.search_batch(&model, &queries, 10);
            assert_eq!(batch.len(), single.len());
            for (qi, (got, want)) in batch.iter().zip(single.iter()).enumerate() {
                assert_identical(got, want, &format!("shards={n} threads={threads} q#{qi}"));
            }
            // The single-query pooled paths at the same pool sizes: the
            // forced scatter and the adaptive dispatcher both stay
            // bit-identical whether the pool or the caller scores shards.
            let mut session = set.session();
            let mut out = Vec::new();
            for (qi, q) in queries.iter().take(24).enumerate() {
                set.search_tags_scatter_with(&mut session, &model, q, 10, &mut out);
                assert_identical(
                    &out,
                    &single[qi],
                    &format!("scatter shards={n} threads={threads} q#{qi}"),
                );
                set.search_tags_auto(&mut session, &model, q, 10, &mut out);
                assert_identical(
                    &out,
                    &single[qi],
                    &format!("auto shards={n} threads={threads} q#{qi}"),
                );
            }
            parallel::set_num_threads(0);
        }
    }
}

fn build_small_model(seed: u64) -> (Folksonomy, CubeLsi) {
    let ds = generate(&GeneratorConfig {
        users: 30,
        resources: 40,
        concepts: 5,
        assignments: 1_500,
        seed,
        ..Default::default()
    });
    let model = CubeLsi::build(
        &ds.folksonomy,
        &CubeLsiConfig {
            core_dims: Some((8, 8, 8)),
            num_concepts: Some(5),
            max_als_iters: 6,
            seed,
            ..Default::default()
        },
    )
    .unwrap();
    (ds.folksonomy, model)
}

/// End-to-end through the persistence layer: `save_sharded` manifests —
/// plain and compressed (format v3 shards) — loaded owned and zero-copy
/// answer bit-identically to the unsharded artifact, under every
/// strategy.
#[test]
fn sharded_artifacts_round_trip_owned_and_zero_copy() {
    let (f, model) = build_small_model(41);
    let dir = std::env::temp_dir().join(format!("cubelsi-sharded-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let single_path = dir.join("single.cubelsi");
    persist::save_to_path(&single_path, &model, &f).unwrap();

    let mut rng = StdRng::seed_from_u64(41);
    let queries: Vec<Vec<TagId>> = (0..20)
        .map(|_| random_query(&mut rng, f.num_tags()))
        .collect();

    for &n in &SHARD_COUNTS {
        for compress in [false, true] {
            let manifest_path = dir.join(format!("model-{n}-c{}.shards", compress as u8));
            let report = shard::save_sharded_with(&manifest_path, &model, &f, n, compress).unwrap();
            assert_eq!(report.shard_paths.len(), n);
            assert_eq!(
                report.shard_postings.iter().sum::<usize>(),
                model.index().num_postings(),
                "shards must partition the postings exactly"
            );
            for mode in [LoadMode::Owned, LoadMode::ZeroCopy] {
                let mut set = shard::load_source(&manifest_path, mode).unwrap();
                assert_eq!(set.num_shards(), n);
                assert_eq!(set.is_zero_copy(), mode == LoadMode::ZeroCopy);
                for strategy in STRATEGIES {
                    set.set_strategy(strategy);
                    let mut session = set.session();
                    let mut out = Vec::new();
                    for (qi, q) in queries.iter().enumerate() {
                        let single = model.search_ids(q, 10);
                        set.search_tags_with(&mut session, set.concepts(), q, 10, &mut out);
                        assert_identical(
                            &out,
                            &single,
                            &format!(
                                "persist shards={n} compress={compress} {mode:?} {strategy:?} q#{qi}"
                            ),
                        );
                    }
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hot reload under a changed corpus and shard count: a warmed session
/// keeps serving across the swap — old generations drain for whoever
/// still holds their `Arc`, new queries see the new model — and the
/// post-reload answers are bit-identical to a fresh single engine over
/// the new corpus.
#[test]
fn hot_reload_swaps_models_under_warm_sessions() {
    let (f_a, model_a) = build_small_model(51);
    let (f_b, model_b) = build_small_model(52);
    let dir = std::env::temp_dir().join(format!("cubelsi-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("live.shards");

    shard::save_sharded(&manifest_path, &model_a, &f_a, 2).unwrap();
    let set = shard::load_source(&manifest_path, LoadMode::Owned).unwrap();
    let engine = ShardedEngine::new(set, PruningStrategy::BlockMax)
        .with_source(&manifest_path, LoadMode::Owned);

    let mut rng = StdRng::seed_from_u64(51);
    let queries: Vec<Vec<TagId>> = (0..10)
        .map(|_| random_query(&mut rng, f_a.num_tags().min(f_b.num_tags())))
        .collect();

    let mut session = engine.session();
    let mut out = Vec::new();
    for q in &queries {
        engine.search_tags_with(&mut session, q, 5, &mut out);
        assert_identical(&out, &model_a.search_ids(q, 5), "generation 1");
    }

    // Replace the manifest + shards on disk (different corpus, different
    // shard count) and swap generations under the live engine.
    shard::save_sharded(&manifest_path, &model_b, &f_b, 3).unwrap();
    let old = engine.current();
    let reloaded = engine.reload().unwrap();
    assert_eq!(old.number() + 1, reloaded.number());
    assert_eq!(reloaded.set().num_shards(), 3);

    // The drained generation still answers for holders of its Arc...
    let mut old_session = old.set().session();
    for q in &queries {
        old.set()
            .search_tags_with(&mut old_session, old.set().concepts(), q, 5, &mut out);
        assert_identical(&out, &model_a.search_ids(q, 5), "drained generation");
    }
    // ...while the warmed session serves the new generation bit-exactly.
    for q in &queries {
        engine.search_tags_with(&mut session, q, 5, &mut out);
        assert_identical(&out, &model_b.search_ids(q, 5), "generation 2");
    }

    // The pooled paths survive the swap too: the same warmed session
    // drives the forced scatter and the adaptive dispatcher against the
    // new generation at several pool sizes — pool workers' cached
    // sessions re-validate lazily against whatever index they are
    // handed, so a generation swap needs no pool coordination.
    let generation = engine.current();
    let new_set = generation.set();
    for threads in [1usize, 2, 8] {
        parallel::set_num_threads(threads);
        for q in &queries {
            new_set.search_tags_scatter_with(&mut session, new_set.concepts(), q, 5, &mut out);
            assert_identical(
                &out,
                &model_b.search_ids(q, 5),
                &format!("scatter after reload threads={threads}"),
            );
            new_set.search_tags_auto(&mut session, new_set.concepts(), q, 5, &mut out);
            assert_identical(
                &out,
                &model_b.search_ids(q, 5),
                &format!("auto after reload threads={threads}"),
            );
        }
        parallel::set_num_threads(0);
    }
    std::fs::remove_dir_all(&dir).ok();
}
