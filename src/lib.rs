//! # CubeLSI
//!
//! A full Rust reproduction of *"CubeLSI: An Effective and Efficient Method
//! for Searching Resources in Social Tagging Systems"* (Bi, Lee, Kao, Cheng —
//! ICDE 2011).
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`linalg`] — dense/sparse linear algebra, eigensolvers, clustering;
//! * [`tensor`] — third-order tensors and Tucker (HOOI/ALS) decomposition;
//! * [`folksonomy`] — the (users, tags, resources, assignments) data model;
//! * [`datagen`] — synthetic folksonomies and the JCN taxonomy ground truth;
//! * [`core`] — the CubeLSI pipeline (tag distances, concepts, retrieval);
//! * [`baselines`] — Freq, BOW, LSI, CubeSim and FolkRank rankers;
//! * [`eval`] — NDCG / JCN metrics, query workloads, timing and memory
//!   accounting.

pub use cubelsi_baselines as baselines;
pub use cubelsi_core as core;
pub use cubelsi_datagen as datagen;
pub use cubelsi_eval as eval;
pub use cubelsi_folksonomy as folksonomy;
pub use cubelsi_linalg as linalg;
pub use cubelsi_tensor as tensor;

/// Commonly used items, importable with `use cubelsi::prelude::*`.
pub mod prelude {
    pub use cubelsi_folksonomy::{Folksonomy, ResourceId, TagAssignment, TagId, UserId};
}
