//! `cubelsi-search` — build a CubeLSI index over a TSV tag-assignment dump
//! and query it from the command line.
//!
//! ```sh
//! # data.tsv: one "user<TAB>tag<TAB>resource" line per assignment
//! cubelsi-search data.tsv music audio            # one-shot query
//! cubelsi-search --concepts 32 data.tsv jazz     # fix the concept count
//! cubelsi-search --no-clean data.tsv rock        # skip §VI-A cleaning
//! ```

use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::folksonomy::{clean, read_tsv_file, CleaningConfig, Folksonomy};
use std::process::ExitCode;

struct Args {
    path: String,
    query: Vec<String>,
    concepts: Option<usize>,
    reduction_ratio: f64,
    top_k: usize,
    clean: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        path: String::new(),
        query: Vec::new(),
        concepts: None,
        reduction_ratio: 50.0,
        top_k: 10,
        clean: true,
        seed: 2011,
    };
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--concepts" => {
                let v = args.next().ok_or("--concepts needs a value")?;
                parsed.concepts = Some(v.parse().map_err(|_| "--concepts must be an integer")?);
            }
            "--ratio" => {
                let v = args.next().ok_or("--ratio needs a value")?;
                parsed.reduction_ratio = v.parse().map_err(|_| "--ratio must be a number")?;
            }
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                parsed.top_k = v.parse().map_err(|_| "--top must be an integer")?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| "--seed must be an integer")?;
            }
            "--no-clean" => parsed.clean = false,
            "--help" | "-h" => {
                return Err(
                    "usage: cubelsi-search [--concepts K] [--ratio C] [--top N] \
                            [--no-clean] [--seed S] DATA.tsv QUERY_TAG..."
                        .to_owned(),
                )
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.is_empty() {
        return Err("missing DATA.tsv argument (see --help)".to_owned());
    }
    parsed.path = positional.remove(0);
    parsed.query = positional;
    if parsed.query.is_empty() {
        return Err("missing query tags (see --help)".to_owned());
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let raw = read_tsv_file(&args.path).map_err(|e| format!("reading {}: {e}", args.path))?;
    eprintln!("loaded  {}", raw.stats());
    let corpus: Folksonomy = if args.clean {
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        eprintln!("cleaned {} ({} rounds)", report.cleaned, report.rounds);
        cleaned
    } else {
        raw
    };
    if corpus.num_assignments() == 0 {
        return Err("no assignments survive; try --no-clean".to_owned());
    }

    // Clamp the reduction ratios so the core keeps at least ~8 dimensions
    // per mode (or 2x the requested concepts) — the paper's c = 50 assumes
    // corpus dimensions in the thousands. The floor of 1.25 guarantees the
    // core is always *somewhat* trimmed: an untrimmed decomposition
    // reproduces the raw tensor, noise and all (§IV-D's purification needs
    // discarded components to purify anything).
    let min_j = args.concepts.map_or(8usize, |k| (2 * k).max(8));
    let eff = |dim: usize| (args.reduction_ratio).min((dim as f64 / min_j as f64).max(1.25));
    let config = CubeLsiConfig {
        reduction_ratios: (
            eff(corpus.num_users()),
            eff(corpus.num_tags()),
            eff(corpus.num_resources()),
        ),
        num_concepts: args.concepts,
        seed: args.seed,
        ..Default::default()
    };
    let engine = CubeLsi::build(&corpus, &config).map_err(|e| format!("building CubeLSI: {e}"))?;
    eprintln!(
        "built   fit {:.3}, {} concepts, offline {:?}",
        engine.decomposition().fit,
        engine.concepts().num_concepts(),
        engine.timings().total()
    );

    // Serve through the pruned top-k engine on a reused session — the
    // same allocation-free path a long-running server would use.
    let query: Vec<&str> = args.query.iter().map(|s| s.as_str()).collect();
    let ids: Vec<_> = query
        .iter()
        .filter_map(|name| corpus.tag_id(name))
        .collect();
    let mut session = engine.session();
    let mut hits = Vec::new();
    let t0 = std::time::Instant::now();
    engine.search_ids_with(&mut session, &ids, args.top_k, &mut hits);
    eprintln!("queried {:?}", t0.elapsed());
    if hits.is_empty() {
        println!("no results for {query:?}");
        return Ok(());
    }
    println!("results for {query:?}:");
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>3}. {}  ({:.4})",
            rank + 1,
            corpus.resource_name(hit.resource),
            hit.score
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(usage) => {
            eprintln!("{usage}");
            ExitCode::FAILURE
        }
    }
}
