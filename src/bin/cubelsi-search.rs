//! `cubelsi-search` — build a persistent CubeLSI index over a TSV
//! tag-assignment dump and serve queries from it.
//!
//! The offline component (tensor build → Tucker → distances → concepts →
//! index) is expensive; online serving is cheap. The CLI therefore splits
//! the two across process lifetimes:
//!
//! ```sh
//! # data.tsv: one "user<TAB>tag<TAB>resource" line per assignment
//! cubelsi-search build data.tsv model.cubelsi        # offline, once
//! cubelsi-search query model.cubelsi music audio     # online, instant
//! echo "jazz piano" | cubelsi-search serve model.cubelsi   # query loop
//!
//! # one-shot sugar (build in memory + query, nothing persisted):
//! cubelsi-search data.tsv music audio
//! ```
//!
//! `build` accepts `--concepts K`, `--ratio C`, `--seed S`, `--no-clean`;
//! `query`/`serve` accept `--top N`. The artifact is the versioned,
//! checksummed binary described in `cubelsi_core::persist`.

use cubelsi::core::{persist, CubeLsi, CubeLsiConfig};
use cubelsi::folksonomy::{clean, read_tsv_file, CleaningConfig, Folksonomy};
use std::io::BufRead;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage:
  cubelsi-search build [--concepts K] [--ratio C] [--seed S] [--threads N] [--no-clean] DATA.tsv OUT.cubelsi
  cubelsi-search query [--top N] MODEL.cubelsi QUERY_TAG...
  cubelsi-search serve [--top N] MODEL.cubelsi          (queries on stdin, one per line)
  cubelsi-search [build+query options] DATA.tsv QUERY_TAG...   (one-shot, nothing persisted)

options:
  --concepts K   fix the number of concepts (K >= 1; default: 95%-variance rule)
  --ratio C      Tucker reduction ratio (finite, > 0; default 50)
  --top N        results per query (N >= 1; default 10)
  --seed S       seed for all stochastic components (default 2011)
  --threads N    worker threads for the offline build (N >= 1; default: all
                 cores; the CUBELSI_THREADS env var sets the same knob)
  --no-clean     skip the paper's \u{a7}VI-A cleaning pipeline";

/// Options of the offline build phase (shared by `build` and one-shot).
#[derive(Debug, Clone, PartialEq)]
struct BuildOpts {
    concepts: Option<usize>,
    reduction_ratio: f64,
    clean: bool,
    seed: u64,
    threads: Option<usize>,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            concepts: None,
            reduction_ratio: 50.0,
            clean: true,
            seed: 2011,
            threads: None,
        }
    }
}

/// A fully parsed and value-validated invocation.
#[derive(Debug, PartialEq)]
enum Command {
    /// Offline pipeline: TSV in, `.cubelsi` artifact out.
    Build {
        opts: BuildOpts,
        data: String,
        out: String,
    },
    /// Load an artifact and answer one query.
    Query {
        index: String,
        tags: Vec<String>,
        top_k: usize,
    },
    /// Load an artifact and answer stdin queries until EOF.
    Serve { index: String, top_k: usize },
    /// Legacy sugar: build in memory, answer one query, discard.
    OneShot {
        opts: BuildOpts,
        data: String,
        tags: Vec<String>,
        top_k: usize,
    },
    /// `--help` anywhere.
    Help,
}

/// Flags accepted across subcommands; values are validated here, at parse
/// time, so garbage (`--ratio 0`, `--ratio nan`, `--top 0`,
/// `--concepts 0`) dies with a usage error instead of flowing into
/// core-dimension arithmetic.
#[derive(Debug, Default)]
struct RawFlags {
    concepts: Option<usize>,
    ratio: Option<f64>,
    top: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    no_clean: bool,
}

fn parse_command(args: impl IntoIterator<Item = String>) -> Result<Command, String> {
    let mut flags = RawFlags::default();
    let mut positional: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--concepts" => {
                let v = args.next().ok_or("--concepts needs a value")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("--concepts must be an integer, got {v:?}"))?;
                if k < 1 {
                    return Err("--concepts must be >= 1".to_owned());
                }
                flags.concepts = Some(k);
            }
            "--ratio" => {
                let v = args.next().ok_or("--ratio needs a value")?;
                let c: f64 = v
                    .parse()
                    .map_err(|_| format!("--ratio must be a number, got {v:?}"))?;
                if !c.is_finite() || c <= 0.0 {
                    return Err(format!("--ratio must be a finite number > 0, got {v}"));
                }
                flags.ratio = Some(c);
            }
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--top must be an integer, got {v:?}"))?;
                if n < 1 {
                    return Err("--top must be >= 1".to_owned());
                }
                flags.top = Some(n);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                flags.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed must be an integer, got {v:?}"))?,
                );
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                flags.threads = Some(parse_thread_count(&v, "--threads")?);
            }
            "--no-clean" => flags.no_clean = true,
            "--help" | "-h" => return Ok(Command::Help),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other} (see --help)"));
            }
            _ => positional.push(arg),
        }
    }

    let build_opts = |flags: &RawFlags| BuildOpts {
        concepts: flags.concepts,
        reduction_ratio: flags.ratio.unwrap_or(50.0),
        clean: !flags.no_clean,
        seed: flags.seed.unwrap_or(2011),
        threads: flags.threads,
    };
    let top_k = flags.top.unwrap_or(10);
    // Build-only flags must not be silently ignored on the serving
    // subcommands: the model shape is baked into the artifact, and
    // accepting `query --concepts 32` would let the user believe they
    // re-ranked with different parameters.
    let reject_build_flags = |flags: &RawFlags, cmd: &str| -> Result<(), String> {
        for (set, name) in [
            (flags.concepts.is_some(), "--concepts"),
            (flags.ratio.is_some(), "--ratio"),
            (flags.seed.is_some(), "--seed"),
            (flags.no_clean, "--no-clean"),
        ] {
            if set {
                return Err(format!(
                    "{name} does not apply to `{cmd}`: those parameters are baked into the \
                     artifact at build time (see --help)"
                ));
            }
        }
        if flags.threads.is_some() {
            return Err(format!(
                "--threads does not apply to `{cmd}`: it tunes the offline build \
                 (set CUBELSI_THREADS to cap serving parallelism; see --help)"
            ));
        }
        Ok(())
    };

    match positional.first().map(String::as_str) {
        Some("build") => {
            if flags.top.is_some() {
                return Err("--top does not apply to `build` (see --help)".to_owned());
            }
            let [_, data, out] = <[String; 3]>::try_from(positional)
                .map_err(|_| "build needs exactly DATA.tsv and OUT.cubelsi (see --help)")?;
            Ok(Command::Build {
                opts: build_opts(&flags),
                data,
                out,
            })
        }
        Some("query") => {
            reject_build_flags(&flags, "query")?;
            if positional.len() < 3 {
                return Err("query needs MODEL.cubelsi and at least one tag (see --help)".into());
            }
            let mut rest = positional.into_iter().skip(1);
            let index = rest.next().expect("length checked above");
            Ok(Command::Query {
                index,
                tags: rest.collect(),
                top_k,
            })
        }
        Some("serve") => {
            reject_build_flags(&flags, "serve")?;
            let [_, index] = <[String; 2]>::try_from(positional)
                .map_err(|_| "serve needs exactly MODEL.cubelsi (see --help)")?;
            Ok(Command::Serve { index, top_k })
        }
        Some(_) => {
            if positional.len() < 2 {
                return Err("missing query tags (see --help)".to_owned());
            }
            let mut rest = positional.into_iter();
            let data = rest.next().expect("length checked above");
            Ok(Command::OneShot {
                opts: build_opts(&flags),
                data,
                tags: rest.collect(),
                top_k,
            })
        }
        None => Err("missing arguments (see --help)".to_owned()),
    }
}

/// Parses and validates a worker-thread count (`N >= 1`), shared by the
/// `--threads` flag and the `CUBELSI_THREADS` environment variable.
fn parse_thread_count(v: &str, source: &str) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("{source} must be an integer, got {v:?}"))?;
    if n < 1 {
        return Err(format!("{source} must be >= 1, got {v}"));
    }
    Ok(n)
}

/// Applies the worker-pool size used by `cubelsi_linalg::parallel`: an
/// explicit `--threads` wins, otherwise `CUBELSI_THREADS`, otherwise the
/// machine's available parallelism.
fn configure_threads(flag: Option<usize>) -> Result<(), String> {
    let n = match flag {
        Some(n) => Some(n),
        None => match std::env::var("CUBELSI_THREADS") {
            Ok(v) => Some(parse_thread_count(&v, "CUBELSI_THREADS")?),
            Err(_) => None,
        },
    };
    if let Some(n) = n {
        cubelsi::linalg::parallel::set_num_threads(n);
        eprintln!("threads {n}");
    }
    Ok(())
}

/// Reads, optionally cleans, and validates the corpus.
fn load_corpus(path: &str, do_clean: bool) -> Result<Folksonomy, String> {
    let raw = read_tsv_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    eprintln!("loaded  {}", raw.stats());
    let corpus = if do_clean {
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        eprintln!("cleaned {} ({} rounds)", report.cleaned, report.rounds);
        cleaned
    } else {
        raw
    };
    if corpus.num_assignments() == 0 {
        return Err("no assignments survive; try --no-clean".to_owned());
    }
    Ok(corpus)
}

/// Runs the offline pipeline and prints per-phase timings (the Table V
/// quantities a deployment watches during a rebuild).
fn build_model(corpus: &Folksonomy, opts: &BuildOpts) -> Result<CubeLsi, String> {
    // Clamp the reduction ratios so the core keeps at least ~8 dimensions
    // per mode (or 2x the requested concepts) — the paper's c = 50 assumes
    // corpus dimensions in the thousands. The floor of 1.25 guarantees the
    // core is always *somewhat* trimmed: an untrimmed decomposition
    // reproduces the raw tensor, noise and all (§IV-D's purification needs
    // discarded components to purify anything).
    let min_j = opts.concepts.map_or(8usize, |k| (2 * k).max(8));
    let eff = |dim: usize| (opts.reduction_ratio).min((dim as f64 / min_j as f64).max(1.25));
    let config = CubeLsiConfig {
        reduction_ratios: (
            eff(corpus.num_users()),
            eff(corpus.num_tags()),
            eff(corpus.num_resources()),
        ),
        num_concepts: opts.concepts,
        seed: opts.seed,
        ..Default::default()
    };
    let model = CubeLsi::build(corpus, &config).map_err(|e| format!("building CubeLSI: {e}"))?;
    let t = model.timings();
    eprintln!(
        "built   fit {:.3}, {} concepts",
        model.decomposition().fit,
        model.concepts().num_concepts(),
    );
    eprintln!(
        "offline tensor {:?} | tucker {:?} | distances {:?} | clustering {:?} | indexing {:?} | total {:?}",
        t.tensor_build, t.tucker, t.distances, t.clustering, t.indexing, t.total()
    );
    Ok(model)
}

/// Loads an artifact from disk, reporting load time and model shape — the
/// cheap path that replaces a full offline rebuild.
fn load_artifact(path: &str) -> Result<persist::Artifact, String> {
    let t0 = Instant::now();
    let artifact = persist::load_from_path(path).map_err(|e| format!("loading {path}: {e}"))?;
    eprintln!(
        "loaded  {} in {:?} ({} concepts; offline build had taken {:?})",
        artifact.folksonomy.stats(),
        t0.elapsed(),
        artifact.model.concepts().num_concepts(),
        artifact.model.timings().total(),
    );
    Ok(artifact)
}

/// Answers one query on a warm session and prints the ranked hits.
fn answer(
    model: &CubeLsi,
    corpus: &Folksonomy,
    session: &mut cubelsi::core::QuerySession,
    tags: &[String],
    top_k: usize,
) {
    let ids: Vec<_> = tags
        .iter()
        .filter_map(|name| {
            let id = corpus.tag_id(name);
            if id.is_none() {
                eprintln!("warning: unknown tag {name:?} ignored");
            }
            id
        })
        .collect();
    let mut hits = Vec::new();
    let t0 = Instant::now();
    model.search_ids_with(session, &ids, top_k, &mut hits);
    eprintln!("queried {:?}", t0.elapsed());
    if hits.is_empty() {
        println!("no results for {tags:?}");
        return;
    }
    println!("results for {tags:?}:");
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>3}. {}  ({:.4})",
            rank + 1,
            corpus.resource_name(hit.resource),
            hit.score
        );
    }
}

fn run_build(opts: &BuildOpts, data: &str, out: &str) -> Result<(), String> {
    configure_threads(opts.threads)?;
    let corpus = load_corpus(data, opts.clean)?;
    let model = build_model(&corpus, opts)?;
    let t0 = Instant::now();
    persist::save_to_path(out, &model, &corpus).map_err(|e| format!("saving {out}: {e}"))?;
    let size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    eprintln!("saved   {out} ({size} bytes) in {:?}", t0.elapsed());
    Ok(())
}

fn run_query(index: &str, tags: &[String], top_k: usize) -> Result<(), String> {
    configure_threads(None)?;
    let artifact = load_artifact(index)?;
    let mut session = artifact.model.session();
    answer(
        &artifact.model,
        &artifact.folksonomy,
        &mut session,
        tags,
        top_k,
    );
    Ok(())
}

fn run_serve(index: &str, top_k: usize) -> Result<(), String> {
    configure_threads(None)?;
    let artifact = load_artifact(index)?;
    let mut session = artifact.model.session();
    eprintln!("serving: one whitespace-separated tag query per line, EOF to stop");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let tags: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        if tags.is_empty() {
            continue;
        }
        answer(
            &artifact.model,
            &artifact.folksonomy,
            &mut session,
            &tags,
            top_k,
        );
    }
    Ok(())
}

fn run_one_shot(opts: &BuildOpts, data: &str, tags: &[String], top_k: usize) -> Result<(), String> {
    configure_threads(opts.threads)?;
    let corpus = load_corpus(data, opts.clean)?;
    let model = build_model(&corpus, opts)?;
    let mut session = model.session();
    answer(&model, &corpus, &mut session, tags, top_k);
    Ok(())
}

fn main() -> ExitCode {
    let result = match parse_command(std::env::args().skip(1)) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Command::Build { opts, data, out }) => run_build(&opts, &data, &out),
        Ok(Command::Query { index, tags, top_k }) => run_query(&index, &tags, top_k),
        Ok(Command::Serve { index, top_k }) => run_serve(&index, top_k),
        Ok(Command::OneShot {
            opts,
            data,
            tags,
            top_k,
        }) => run_one_shot(&opts, &data, &tags, top_k),
        Err(usage) => {
            eprintln!("error: {usage}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_command(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn build_subcommand_parses() {
        let cmd = parse(&[
            "build",
            "--concepts",
            "8",
            "--ratio",
            "25",
            "d.tsv",
            "m.cubelsi",
        ]);
        assert_eq!(
            cmd.unwrap(),
            Command::Build {
                opts: BuildOpts {
                    concepts: Some(8),
                    reduction_ratio: 25.0,
                    clean: true,
                    seed: 2011,
                    threads: None,
                },
                data: "d.tsv".into(),
                out: "m.cubelsi".into(),
            }
        );
        assert!(parse(&["build", "d.tsv"]).is_err());
        assert!(parse(&["build", "d.tsv", "a", "b"]).is_err());
        assert!(parse(&["build", "--top", "5", "d.tsv", "m.cubelsi"]).is_err());
    }

    #[test]
    fn query_and_serve_parse() {
        assert_eq!(
            parse(&["query", "--top", "3", "m.cubelsi", "jazz", "piano"]).unwrap(),
            Command::Query {
                index: "m.cubelsi".into(),
                tags: vec!["jazz".into(), "piano".into()],
                top_k: 3,
            }
        );
        assert!(parse(&["query", "m.cubelsi"]).is_err(), "query needs tags");
        assert_eq!(
            parse(&["serve", "m.cubelsi"]).unwrap(),
            Command::Serve {
                index: "m.cubelsi".into(),
                top_k: 10,
            }
        );
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", "a", "b"]).is_err());
    }

    #[test]
    fn one_shot_stays_supported() {
        assert_eq!(
            parse(&["data.tsv", "music", "audio"]).unwrap(),
            Command::OneShot {
                opts: BuildOpts::default(),
                data: "data.tsv".into(),
                tags: vec!["music".into(), "audio".into()],
                top_k: 10,
            }
        );
        assert!(parse(&["data.tsv"]).is_err(), "one-shot needs tags");
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn ratio_validation_rejects_garbage() {
        // These previously flowed into core-dim computation as garbage
        // (round() of inf cast to usize); now they die at parse time.
        for bad in ["0", "-3", "nan", "inf", "-inf", "abc"] {
            let err = parse(&["--ratio", bad, "d.tsv", "q"]).unwrap_err();
            assert!(err.contains("--ratio"), "ratio {bad}: {err}");
        }
        assert!(parse(&["--ratio", "1.5", "d.tsv", "q"]).is_ok());
        assert!(parse(&["--ratio"]).is_err(), "missing value");
    }

    #[test]
    fn top_and_concepts_validation() {
        assert!(parse(&["--top", "0", "d.tsv", "q"])
            .unwrap_err()
            .contains("--top"));
        assert!(parse(&["--top", "-1", "d.tsv", "q"]).is_err());
        assert!(parse(&["--concepts", "0", "d.tsv", "q"])
            .unwrap_err()
            .contains("--concepts"));
        assert!(parse(&["--concepts", "1", "d.tsv", "q"]).is_ok());
        assert!(parse(&["--seed", "x", "d.tsv", "q"]).is_err());
    }

    #[test]
    fn threads_flag_validated_at_parse_time() {
        let cmd = parse(&["build", "--threads", "4", "d.tsv", "m.cubelsi"]).unwrap();
        match cmd {
            Command::Build { opts, .. } => assert_eq!(opts.threads, Some(4)),
            other => panic!("expected build, got {other:?}"),
        }
        for bad in ["0", "-2", "abc", "1.5"] {
            let err = parse(&["build", "--threads", bad, "d.tsv", "m.cubelsi"]).unwrap_err();
            assert!(err.contains("--threads"), "threads {bad}: {err}");
        }
        assert!(parse(&["build", "--threads"]).is_err(), "missing value");
        // One-shot builds accept it too.
        match parse(&["--threads", "2", "d.tsv", "rock"]).unwrap() {
            Command::OneShot { opts, .. } => assert_eq!(opts.threads, Some(2)),
            other => panic!("expected one-shot, got {other:?}"),
        }
    }

    #[test]
    fn thread_count_parser_rules() {
        assert_eq!(parse_thread_count("1", "CUBELSI_THREADS").unwrap(), 1);
        assert_eq!(parse_thread_count("64", "--threads").unwrap(), 64);
        for bad in ["0", "", "four", "-1"] {
            assert!(parse_thread_count(bad, "CUBELSI_THREADS").is_err(), "{bad}");
        }
    }

    #[test]
    fn serving_subcommands_reject_build_flags() {
        for (flag, value) in [
            ("--concepts", Some("8")),
            ("--ratio", Some("25")),
            ("--seed", Some("7")),
            ("--threads", Some("2")),
            ("--no-clean", None),
        ] {
            let mut args = vec!["query", flag];
            args.extend(value);
            args.extend(["m.cubelsi", "jazz"]);
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "query {flag}: {err}");

            let mut args = vec!["serve", flag];
            args.extend(value);
            args.push("m.cubelsi");
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "serve {flag}: {err}");
        }
    }

    #[test]
    fn unknown_flags_and_help() {
        assert!(parse(&["--frobnicate", "d.tsv", "q"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["build", "-h"]).unwrap(), Command::Help);
    }

    #[test]
    fn no_clean_and_seed_flow_through() {
        let cmd = parse(&["--no-clean", "--seed", "7", "d.tsv", "rock"]).unwrap();
        match cmd {
            Command::OneShot { opts, .. } => {
                assert!(!opts.clean);
                assert_eq!(opts.seed, 7);
            }
            other => panic!("expected one-shot, got {other:?}"),
        }
    }
}
