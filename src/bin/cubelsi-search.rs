//! `cubelsi-search` — build a persistent CubeLSI index over a TSV
//! tag-assignment dump and serve queries from it.
//!
//! The offline component (tensor build → Tucker → distances → concepts →
//! index) is expensive; online serving is cheap. The CLI therefore splits
//! the two across process lifetimes:
//!
//! ```sh
//! # data.tsv: one "user<TAB>tag<TAB>resource" line per assignment
//! cubelsi-search build data.tsv model.cubelsi            # offline, once
//! cubelsi-search build --shards 4 data.tsv model.shards  # manifest + 4 shard artifacts
//! cubelsi-search query model.cubelsi music audio         # online, instant
//! cubelsi-search query model.shards music audio          # sharded, same answers
//! cubelsi-search serve --listen 127.0.0.1:7878 model.shards   # TCP server
//!
//! # one-shot sugar (build in memory + query, nothing persisted):
//! cubelsi-search data.tsv music audio
//! ```
//!
//! `build` accepts `--concepts K`, `--ratio C`, `--seed S`, `--no-clean`,
//! and `--shards N` (emit a shard manifest plus `N` resource-partitioned
//! artifacts instead of one file); `query`/`serve` accept a single
//! artifact **or** a shard manifest (sniffed from the magic bytes),
//! `--top N`, and `--zero-copy` (serve the index straight out of the
//! artifact buffer); `query` additionally accepts `--repeat N` for quick
//! micro-measurement.
//!
//! `serve` is a concurrent multi-client TCP line-protocol server (one
//! request per line, one reply line per request):
//!
//! * a whitespace-separated tag list (optionally prefixed `QUERY `) →
//!   `OK<TAB><n><TAB><name>  (<score>)...`;
//! * `RELOAD` → hot-reloads the manifest/artifact from disk and swaps it
//!   under live traffic (in-flight queries drain on the old generation);
//! * `STATS` → server-wide latency percentiles plus the query-executor
//!   counters (pool size, inline/fanout dispatch decisions, steals);
//! * `QUIT` → closes the connection; `SHUTDOWN` → stops the server.
//!
//! Malformed requests (non-UTF-8 bytes, oversized lines) get an `ERR`
//! reply instead of taking the server down; per-client latency stats
//! (count, p50/p95/p99, queries/s) are logged on disconnect. Artifacts
//! are the versioned, checksummed binaries described in
//! `cubelsi_core::persist`; the manifest format lives in
//! `cubelsi_core::shard`.

use cubelsi::core::shard::{self, LoadMode, ShardSet, ShardedEngine};
use cubelsi::core::{persist, CubeLsi, CubeLsiConfig, PruningStrategy, RankedResource};
use cubelsi::folksonomy::{clean, read_tsv_file, CleaningConfig, Folksonomy, TagId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "usage:
  cubelsi-search build [--concepts K] [--ratio C] [--seed S] [--threads N] [--no-clean] [--shards N] [--compress] DATA.tsv OUT
  cubelsi-search query [--top N] [--repeat N] [--zero-copy] [--threads N] MODEL QUERY_TAG...
  cubelsi-search serve [--top N] [--zero-copy] [--threads N] [--listen ADDR] MODEL   (TCP line protocol)
  cubelsi-search [build+query options] DATA.tsv QUERY_TAG...   (one-shot, nothing persisted)

MODEL is a single .cubelsi artifact or a shard manifest (build --shards).

options:
  --concepts K   fix the number of concepts (K >= 1; default: 95%-variance rule)
  --ratio C      Tucker reduction ratio (finite, > 0; default 50)
  --shards N     partition the index across N shard artifacts and write a
                 shard manifest at OUT (N >= 1; `build` only)
  --compress     also store the bit-packed/quantized posting mirror in the
                 artifact (format v3; `build` only — `query`/`serve` pick
                 it up transparently, results stay bit-identical)
  --top N        results per query (N >= 1; default 10)
  --repeat N     run the query N times on the warm session and report
                 latency stats (N >= 1; default 1; `query` only)
  --zero-copy    serve the index arrays straight out of the artifact
                 buffer instead of copying them (`query`/`serve` only)
  --listen ADDR  TCP listen address (default 127.0.0.1:7878; `serve` only;
                 port 0 picks a free port, printed as `listening ADDR`)
  --seed S       seed for all stochastic components (default 2011)
  --threads N    worker threads for the offline build and the online query
                 executor (N >= 1; default: all cores; the CUBELSI_THREADS
                 env var sets the same knob; 1 forces sequential serving)
  --no-clean     skip the paper's \u{a7}VI-A cleaning pipeline

serve protocol (one request per line, one reply line per request):
  tag [tag...]   rank resources (OK\\t<n>\\t<name>  (<score>)...)
  QUERY tag...   same, explicit form (tags named RELOAD etc. stay queryable)
  RELOAD         reload the manifest/artifact from disk, swap under traffic
  STATS          server-wide latency percentiles + executor counters
  QUIT           close this connection        SHUTDOWN   stop the server";

/// Options of the offline build phase (shared by `build` and one-shot).
#[derive(Debug, Clone, PartialEq)]
struct BuildOpts {
    concepts: Option<usize>,
    reduction_ratio: f64,
    clean: bool,
    seed: u64,
    threads: Option<usize>,
    shards: Option<usize>,
    compress: bool,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            concepts: None,
            reduction_ratio: 50.0,
            clean: true,
            seed: 2011,
            threads: None,
            shards: None,
            compress: false,
        }
    }
}

/// A fully parsed and value-validated invocation.
#[derive(Debug, PartialEq)]
enum Command {
    /// Offline pipeline: TSV in, `.cubelsi` artifact out.
    Build {
        opts: BuildOpts,
        data: String,
        out: String,
    },
    /// Load an artifact and answer one query (optionally repeated for
    /// latency measurement).
    Query {
        index: String,
        tags: Vec<String>,
        top_k: usize,
        repeat: usize,
        zero_copy: bool,
        threads: Option<usize>,
    },
    /// Serve an artifact or shard manifest over a TCP line protocol
    /// (concurrent clients, hot `RELOAD`, server-wide latency stats).
    Serve {
        index: String,
        top_k: usize,
        zero_copy: bool,
        listen: String,
        threads: Option<usize>,
    },
    /// Legacy sugar: build in memory, answer one query, discard.
    OneShot {
        opts: BuildOpts,
        data: String,
        tags: Vec<String>,
        top_k: usize,
    },
    /// `--help` anywhere.
    Help,
}

/// Flags accepted across subcommands; values are validated here, at parse
/// time, so garbage (`--ratio 0`, `--ratio nan`, `--top 0`,
/// `--concepts 0`) dies with a usage error instead of flowing into
/// core-dimension arithmetic.
#[derive(Debug, Default)]
struct RawFlags {
    concepts: Option<usize>,
    ratio: Option<f64>,
    top: Option<usize>,
    repeat: Option<usize>,
    zero_copy: bool,
    seed: Option<u64>,
    threads: Option<usize>,
    no_clean: bool,
    shards: Option<usize>,
    compress: bool,
    listen: Option<String>,
}

fn parse_command(args: impl IntoIterator<Item = String>) -> Result<Command, String> {
    let mut flags = RawFlags::default();
    let mut positional: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--concepts" => {
                let v = args.next().ok_or("--concepts needs a value")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("--concepts must be an integer, got {v:?}"))?;
                if k < 1 {
                    return Err("--concepts must be >= 1".to_owned());
                }
                flags.concepts = Some(k);
            }
            "--ratio" => {
                let v = args.next().ok_or("--ratio needs a value")?;
                let c: f64 = v
                    .parse()
                    .map_err(|_| format!("--ratio must be a number, got {v:?}"))?;
                if !c.is_finite() || c <= 0.0 {
                    return Err(format!("--ratio must be a finite number > 0, got {v}"));
                }
                flags.ratio = Some(c);
            }
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--top must be an integer, got {v:?}"))?;
                if n < 1 {
                    return Err("--top must be >= 1".to_owned());
                }
                flags.top = Some(n);
            }
            "--repeat" => {
                let v = args.next().ok_or("--repeat needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--repeat must be an integer, got {v:?}"))?;
                if n < 1 {
                    return Err("--repeat must be >= 1".to_owned());
                }
                flags.repeat = Some(n);
            }
            "--zero-copy" => flags.zero_copy = true,
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--shards must be an integer, got {v:?}"))?;
                if !(1..=shard::MAX_SHARDS).contains(&n) {
                    return Err(format!(
                        "--shards must be in 1..={}, got {v}",
                        shard::MAX_SHARDS
                    ));
                }
                flags.shards = Some(n);
            }
            "--listen" => {
                let v = args.next().ok_or("--listen needs a value")?;
                if v.parse::<SocketAddr>().is_err() {
                    return Err(format!(
                        "--listen must be a socket address like 127.0.0.1:7878, got {v:?}"
                    ));
                }
                flags.listen = Some(v);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                flags.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed must be an integer, got {v:?}"))?,
                );
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                flags.threads = Some(parse_thread_count(&v, "--threads")?);
            }
            "--no-clean" => flags.no_clean = true,
            "--compress" => flags.compress = true,
            "--help" | "-h" => return Ok(Command::Help),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other} (see --help)"));
            }
            _ => positional.push(arg),
        }
    }

    let build_opts = |flags: &RawFlags| BuildOpts {
        concepts: flags.concepts,
        reduction_ratio: flags.ratio.unwrap_or(50.0),
        clean: !flags.no_clean,
        seed: flags.seed.unwrap_or(2011),
        threads: flags.threads,
        shards: flags.shards,
        compress: flags.compress,
    };
    let top_k = flags.top.unwrap_or(10);
    // Build-only flags must not be silently ignored on the serving
    // subcommands: the model shape is baked into the artifact, and
    // accepting `query --concepts 32` would let the user believe they
    // re-ranked with different parameters.
    let reject_build_flags = |flags: &RawFlags, cmd: &str| -> Result<(), String> {
        for (set, name) in [
            (flags.concepts.is_some(), "--concepts"),
            (flags.ratio.is_some(), "--ratio"),
            (flags.seed.is_some(), "--seed"),
            (flags.no_clean, "--no-clean"),
            (flags.shards.is_some(), "--shards"),
            (flags.compress, "--compress"),
        ] {
            if set {
                return Err(format!(
                    "{name} does not apply to `{cmd}`: those parameters are baked into the \
                     artifact at build time (see --help)"
                ));
            }
        }
        Ok(())
    };

    // Serving-only flags are meaningless without an artifact to serve.
    let reject_serve_flags = |flags: &RawFlags, cmd: &str| -> Result<(), String> {
        for (set, name) in [
            (flags.repeat.is_some(), "--repeat"),
            (flags.zero_copy, "--zero-copy"),
            (flags.listen.is_some(), "--listen"),
        ] {
            if set {
                return Err(format!(
                    "{name} only applies to artifact serving (`query`/`serve`), not `{cmd}` \
                     (see --help)"
                ));
            }
        }
        Ok(())
    };

    match positional.first().map(String::as_str) {
        Some("build") => {
            if flags.top.is_some() {
                return Err("--top does not apply to `build` (see --help)".to_owned());
            }
            reject_serve_flags(&flags, "build")?;
            let [_, data, out] = <[String; 3]>::try_from(positional)
                .map_err(|_| "build needs exactly DATA.tsv and OUT.cubelsi (see --help)")?;
            Ok(Command::Build {
                opts: build_opts(&flags),
                data,
                out,
            })
        }
        Some("query") => {
            reject_build_flags(&flags, "query")?;
            if flags.listen.is_some() {
                return Err("--listen only applies to `serve` (see --help)".to_owned());
            }
            if positional.len() < 3 {
                return Err("query needs MODEL.cubelsi and at least one tag (see --help)".into());
            }
            let mut rest = positional.into_iter().skip(1);
            let index = rest.next().expect("length checked above");
            Ok(Command::Query {
                index,
                tags: rest.collect(),
                top_k,
                repeat: flags.repeat.unwrap_or(1),
                zero_copy: flags.zero_copy,
                threads: flags.threads,
            })
        }
        Some("serve") => {
            reject_build_flags(&flags, "serve")?;
            if flags.repeat.is_some() {
                return Err("--repeat does not apply to `serve` (see --help)".to_owned());
            }
            let [_, index] = <[String; 2]>::try_from(positional)
                .map_err(|_| "serve needs exactly MODEL (artifact or manifest; see --help)")?;
            Ok(Command::Serve {
                index,
                top_k,
                zero_copy: flags.zero_copy,
                listen: flags.listen.unwrap_or_else(|| "127.0.0.1:7878".to_owned()),
                threads: flags.threads,
            })
        }
        Some(_) => {
            if positional.len() < 2 {
                return Err("missing query tags (see --help)".to_owned());
            }
            reject_serve_flags(&flags, "one-shot")?;
            if flags.shards.is_some() {
                return Err(
                    "--shards needs a persisted artifact; use `build --shards` (see --help)"
                        .to_owned(),
                );
            }
            let mut rest = positional.into_iter();
            let data = rest.next().expect("length checked above");
            Ok(Command::OneShot {
                opts: build_opts(&flags),
                data,
                tags: rest.collect(),
                top_k,
            })
        }
        None => Err("missing arguments (see --help)".to_owned()),
    }
}

/// Aggregate per-query latency statistics for the serving commands.
/// Memory is bounded: beyond [`LatencyStats::RESERVOIR`] samples, new
/// latencies replace random reservoir slots (Vitter's Algorithm R with a
/// deterministic xorshift stream), so a serve process that stays up for
/// billions of queries keeps a fixed footprint while the percentiles
/// remain an unbiased estimate; the count and queries/s stay exact.
#[derive(Debug)]
struct LatencyStats {
    sample: Vec<u64>,
    count: u64,
    total_ns: u128,
    rng: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            sample: Vec::new(),
            count: 0,
            total_ns: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl LatencyStats {
    /// Reservoir capacity: 64k samples ≈ 512 KB, enough for a stable p99.
    const RESERVOIR: usize = 1 << 16;

    fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.count += 1;
        self.total_ns += ns as u128;
        if self.sample.len() < Self::RESERVOIR {
            self.sample.push(ns);
        } else {
            // xorshift64 step, then a slot in [0, count): keep with
            // probability RESERVOIR / count, as Algorithm R prescribes.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            let slot = (self.rng % self.count) as usize;
            if slot < Self::RESERVOIR {
                self.sample[slot] = ns;
            }
        }
    }

    #[cfg(test)]
    fn count(&self) -> u64 {
        self.count
    }

    /// `count, p50/p95/p99, queries/s` over the recorded search times
    /// (search only — excludes I/O and result printing). `None` until at
    /// least one query was recorded.
    fn summary(&self) -> Option<String> {
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_unstable();
        let micros = |ns: u64| ns as f64 / 1e3;
        let qps = self.count as f64 / (self.total_ns.max(1) as f64 / 1e9);
        Some(format!(
            "{} queries | p50 {:.1} us | p95 {:.1} us | p99 {:.1} us | {:.0} queries/s",
            self.count,
            micros(percentile(&sorted, 0.50)),
            micros(percentile(&sorted, 0.95)),
            micros(percentile(&sorted, 0.99)),
            qps,
        ))
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (`q` in (0, 1]).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Parses and validates a worker-thread count (`N >= 1`), shared by the
/// `--threads` flag and the `CUBELSI_THREADS` environment variable.
fn parse_thread_count(v: &str, source: &str) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("{source} must be an integer, got {v:?}"))?;
    if n < 1 {
        return Err(format!("{source} must be >= 1, got {v}"));
    }
    Ok(n)
}

/// Applies the worker-pool size used by `cubelsi_linalg::parallel`: an
/// explicit `--threads` wins, otherwise `CUBELSI_THREADS`, otherwise the
/// machine's available parallelism.
fn configure_threads(flag: Option<usize>) -> Result<(), String> {
    let n = match flag {
        Some(n) => Some(n),
        None => match std::env::var("CUBELSI_THREADS") {
            Ok(v) => Some(parse_thread_count(&v, "CUBELSI_THREADS")?),
            Err(_) => None,
        },
    };
    if let Some(n) = n {
        cubelsi::linalg::parallel::set_num_threads(n);
        eprintln!("threads {n}");
    }
    Ok(())
}

/// Reads, optionally cleans, and validates the corpus.
fn load_corpus(path: &str, do_clean: bool) -> Result<Folksonomy, String> {
    let raw = read_tsv_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    eprintln!("loaded  {}", raw.stats());
    let corpus = if do_clean {
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        eprintln!("cleaned {} ({} rounds)", report.cleaned, report.rounds);
        cleaned
    } else {
        raw
    };
    if corpus.num_assignments() == 0 {
        return Err("no assignments survive; try --no-clean".to_owned());
    }
    Ok(corpus)
}

/// Runs the offline pipeline and prints per-phase timings (the Table V
/// quantities a deployment watches during a rebuild).
fn build_model(corpus: &Folksonomy, opts: &BuildOpts) -> Result<CubeLsi, String> {
    // Clamp the reduction ratios so the core keeps at least ~8 dimensions
    // per mode (or 2x the requested concepts) — the paper's c = 50 assumes
    // corpus dimensions in the thousands. The floor of 1.25 guarantees the
    // core is always *somewhat* trimmed: an untrimmed decomposition
    // reproduces the raw tensor, noise and all (§IV-D's purification needs
    // discarded components to purify anything).
    let min_j = opts.concepts.map_or(8usize, |k| (2 * k).max(8));
    let eff = |dim: usize| (opts.reduction_ratio).min((dim as f64 / min_j as f64).max(1.25));
    let config = CubeLsiConfig {
        reduction_ratios: (
            eff(corpus.num_users()),
            eff(corpus.num_tags()),
            eff(corpus.num_resources()),
        ),
        num_concepts: opts.concepts,
        seed: opts.seed,
        ..Default::default()
    };
    let model = CubeLsi::build(corpus, &config).map_err(|e| format!("building CubeLSI: {e}"))?;
    let t = model.timings();
    eprintln!(
        "built   fit {:.3}, {} concepts",
        model.decomposition().fit,
        model.concepts().num_concepts(),
    );
    eprintln!(
        "offline tensor {:?} | tucker {:?} | distances {:?} | clustering {:?} | indexing {:?} | total {:?}",
        t.tensor_build, t.tucker, t.distances, t.clustering, t.indexing, t.total()
    );
    Ok(model)
}

/// Loads a serving source — a single artifact or a shard manifest — into
/// a validated [`ShardSet`], reporting load time, shard count, and load
/// mode. The cheap path that replaces a full offline rebuild.
fn load_shard_set(path: &str, zero_copy: bool) -> Result<ShardSet, String> {
    let mode = if zero_copy {
        LoadMode::ZeroCopy
    } else {
        LoadMode::Owned
    };
    let t0 = Instant::now();
    let set = shard::load_source(path, mode).map_err(|e| format!("loading {path}: {e}"))?;
    let index_mode = if set.is_zero_copy() {
        "zero-copy index"
    } else {
        "owned index"
    };
    eprintln!(
        "loaded  {} in {:?} ({} shard(s); {} concepts; {index_mode})",
        set.folksonomy().stats(),
        t0.elapsed(),
        set.num_shards(),
        set.num_concepts(),
    );
    Ok(set)
}

/// Resolves query tag names to ids, warning about unknown names.
fn resolve_ids(corpus: &Folksonomy, tags: &[String]) -> Vec<cubelsi::folksonomy::TagId> {
    tags.iter()
        .filter_map(|name| {
            let id = corpus.tag_id(name);
            if id.is_none() {
                eprintln!("warning: unknown tag {name:?} ignored");
            }
            id
        })
        .collect()
}

/// Prints one query's ranked hits.
fn print_hits(corpus: &Folksonomy, tags: &[String], hits: &[cubelsi::core::RankedResource]) {
    if hits.is_empty() {
        println!("no results for {tags:?}");
        return;
    }
    println!("results for {tags:?}:");
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>3}. {}  ({:.4})",
            rank + 1,
            corpus.resource_name(hit.resource),
            hit.score
        );
    }
}

fn run_build(opts: &BuildOpts, data: &str, out: &str) -> Result<(), String> {
    configure_threads(opts.threads)?;
    let corpus = load_corpus(data, opts.clean)?;
    let model = build_model(&corpus, opts)?;
    let t0 = Instant::now();
    match opts.shards {
        None => {
            persist::save_to_path_with(out, &model, &corpus, opts.compress)
                .map_err(|e| format!("saving {out}: {e}"))?;
            let size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            eprintln!("saved   {out} ({size} bytes) in {:?}", t0.elapsed());
        }
        Some(n) => {
            let report = shard::save_sharded_with(out, &model, &corpus, n, opts.compress)
                .map_err(|e| format!("saving sharded {out}: {e}"))?;
            for shard_id in 0..n {
                eprintln!(
                    "shard   {} ({} resources, {} postings, {} bytes)",
                    report.shard_paths[shard_id].display(),
                    report.shard_resources[shard_id],
                    report.shard_postings[shard_id],
                    report.shard_bytes[shard_id],
                );
            }
            eprintln!("saved   {out} (manifest, {n} shards) in {:?}", t0.elapsed());
        }
    }
    Ok(())
}

fn run_query(
    index: &str,
    tags: &[String],
    top_k: usize,
    repeat: usize,
    zero_copy: bool,
    threads: Option<usize>,
) -> Result<(), String> {
    configure_threads(threads)?;
    let set = load_shard_set(index, zero_copy)?;
    let mut session = set.session();
    let mut stats = LatencyStats::default();
    // Resolve names exactly once, so an unknown tag warns once however
    // many repeats run.
    let ids = resolve_ids(set.folksonomy(), tags);
    let mut hits = Vec::new();
    let t0 = Instant::now();
    set.search_tags_auto(&mut session, set.concepts(), &ids, top_k, &mut hits);
    let elapsed = t0.elapsed();
    stats.record(elapsed);
    eprintln!("queried {elapsed:?}");
    print_hits(set.folksonomy(), tags, &hits);
    if repeat > 1 {
        // Re-run the same query on the warm session (results already
        // printed once) to measure steady-state latency.
        for _ in 1..repeat {
            let t0 = Instant::now();
            set.search_tags_auto(&mut session, set.concepts(), &ids, top_k, &mut hits);
            stats.record(t0.elapsed());
        }
        if let Some(summary) = stats.summary() {
            eprintln!("repeat  {summary}");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// TCP serving
// ---------------------------------------------------------------------------

/// Upper bound on one request line. Anything longer gets an `ERR` reply
/// and the connection is closed — a client streaming an unbounded line
/// must not be able to grow server memory without limit.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Request {
    /// Rank resources for these tag names.
    Query(Vec<String>),
    /// Hot-reload the manifest/artifact from disk and swap generations.
    Reload,
    /// Report this client's latency statistics.
    Stats,
    /// Close this connection.
    Quit,
    /// Stop the whole server.
    Shutdown,
}

// xtask:hostile-input:begin — everything through `drain_line` handles
// raw bytes from untrusted TCP clients; typed outcomes only (no panics,
// truncating casts, or raw indexing).

/// Parses one request line. `None` means a blank line (ignored). Control
/// commands are the exact uppercase words; `QUERY` (or `Q`) prefixes an
/// explicit tag query, so tags that collide with command names remain
/// queryable.
fn parse_request(line: &str) -> Option<Request> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return None;
    }
    let mut words = trimmed.split_whitespace();
    // Non-empty after trim, so a first word always exists; `?` keeps the
    // request path panic-free regardless.
    let head = words.next()?;
    let rest: Vec<String> = words.map(str::to_owned).collect();
    match head {
        "RELOAD" if rest.is_empty() => Some(Request::Reload),
        "STATS" if rest.is_empty() => Some(Request::Stats),
        "QUIT" if rest.is_empty() => Some(Request::Quit),
        "SHUTDOWN" if rest.is_empty() => Some(Request::Shutdown),
        // A bare `QUERY` still gets a reply (an `ERR`, from the empty
        // tag list) — only genuinely blank lines are ignored, so a
        // lockstep client always reads exactly one line per request.
        "QUERY" | "Q" => Some(Request::Query(rest)),
        _ => {
            let mut tags = Vec::with_capacity(rest.len() + 1);
            tags.push(head.to_owned());
            tags.extend(rest);
            Some(Request::Query(tags))
        }
    }
}

/// Outcome of reading one raw request line with a byte cap.
#[derive(Debug, PartialEq, Eq)]
enum RawLine {
    /// A complete line (without the terminator) is in the buffer.
    Line,
    /// The peer closed the connection (mid-line bytes are discarded —
    /// a disconnect can never execute a half-received request).
    Eof,
    /// The line exceeded the cap; the connection should be closed.
    TooLong,
    /// The server is shutting down (`stop` observed while waiting for
    /// input); close the connection.
    Aborted,
}

/// Reads one `\n`-terminated line into `buf` (CR stripped), enforcing
/// `max` bytes. Never allocates beyond the cap, and treats a final
/// unterminated fragment before EOF as a disconnect, not a request.
///
/// When `stop` is provided, the underlying stream is expected to carry a
/// read timeout: a timed-out read is not an error but a poll point —
/// the flag is checked and the read resumes (partial-line bytes intact),
/// so an idle client cannot keep a handler thread (and with it the
/// whole scoped server shutdown) blocked forever.
fn read_raw_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
    stop: Option<&AtomicBool>,
) -> std::io::Result<RawLine> {
    buf.clear();
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if stop.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    return Ok(RawLine::Aborted);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(RawLine::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Ok(RawLine::TooLong);
                }
                // `pos` comes from `position` over this same slice, so
                // the carve always succeeds; the empty fallback keeps
                // the read loop panic-free.
                buf.extend_from_slice(available.get(..pos).unwrap_or(&[]));
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(RawLine::Line);
            }
            None => {
                let take = available.len();
                if buf.len() + take > max {
                    return Ok(RawLine::TooLong);
                }
                buf.extend_from_slice(available);
                reader.consume(take);
            }
        }
    }
}

/// Discards input up to and including the next `\n`, reading at most
/// `cap` further bytes. Used after an oversized request so the `ERR`
/// reply is not destroyed by a TCP reset (closing a socket with unread
/// inbound data resets the connection and discards transmitted replies).
fn drain_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<()> {
    let mut drained = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = available.len();
                drained += n;
                reader.consume(n);
                if drained > cap {
                    return Ok(());
                }
            }
        }
    }
}
// xtask:hostile-input:end — below here replies are formatted from
// trusted engine state.

/// Formats one query reply line: `OK\t<n>` followed by
/// `\t<name>  (<score>)` per hit — the same per-hit presentation as the
/// `query` subcommand, so scripted clients can diff the two directly.
fn format_hits(corpus: &Folksonomy, hits: &[RankedResource]) -> String {
    use std::fmt::Write as _;
    let mut line = format!("OK\t{}", hits.len());
    for hit in hits {
        let _ = write!(
            line,
            "\t{}  ({:.4})",
            corpus.resource_name(hit.resource),
            hit.score
        );
    }
    line
}

/// Serves one client connection: reads line requests, answers queries on
/// a reused scatter-gather session (adaptive dispatch through the query
/// executor), and logs this client's latency stats on disconnect.
/// Queries also feed `server_stats`, the server-wide recorder behind the
/// `STATS` reply. Any I/O error (including a mid-query disconnect) ends
/// this client only — the accept loop never sees it.
fn handle_client(
    stream: TcpStream,
    engine: &ShardedEngine,
    top_k: usize,
    stop: &AtomicBool,
    server_addr: SocketAddr,
    server_stats: &Mutex<LatencyStats>,
) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_owned());
    stream.set_nodelay(true).ok();
    // Reads poll rather than block indefinitely, so a SHUTDOWN (or any
    // future stop signal) reaches handlers whose clients are idle.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut session = engine.session();
    let mut stats = LatencyStats::default();
    let mut raw = Vec::new();
    let mut hits: Vec<RankedResource> = Vec::new();

    // A macro-free "reply and bail on write failure" helper: the client
    // may vanish between read and write; that ends the session cleanly.
    fn reply(writer: &mut BufWriter<TcpStream>, line: &str) -> bool {
        writeln!(writer, "{line}").is_ok() && writer.flush().is_ok()
    }

    loop {
        // Checked every iteration, not only in the read-timeout arm: a
        // client streaming requests back to back keeps the read buffer
        // full, and without this check such a client could hold the
        // whole scoped shutdown hostage indefinitely.
        if stop.load(Ordering::SeqCst) {
            reply(&mut writer, "ERR server shutting down");
            break;
        }
        match read_raw_line(&mut reader, &mut raw, MAX_REQUEST_BYTES, Some(stop)) {
            Err(e) => {
                eprintln!("client {peer}: read error: {e}");
                break;
            }
            Ok(RawLine::Eof) => break,
            Ok(RawLine::Aborted) => {
                reply(&mut writer, "ERR server shutting down");
                break;
            }
            Ok(RawLine::TooLong) => {
                // Bounded drain of the rest of the line, so the reply
                // below reaches the client before the close.
                drain_line(&mut reader, 8 * 1024 * 1024).ok();
                reply(
                    &mut writer,
                    &format!("ERR request exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                break;
            }
            Ok(RawLine::Line) => {
                let Ok(line) = std::str::from_utf8(&raw) else {
                    if !reply(&mut writer, "ERR request is not valid UTF-8") {
                        break;
                    }
                    continue;
                };
                let Some(request) = parse_request(line) else {
                    continue;
                };
                let ok = match request {
                    Request::Quit => {
                        reply(&mut writer, "OK bye");
                        break;
                    }
                    Request::Shutdown => {
                        reply(&mut writer, "OK shutting down");
                        stop.store(true, Ordering::SeqCst);
                        // Nudge the blocking accept loop awake so it can
                        // observe the stop flag.
                        TcpStream::connect(server_addr).ok();
                        break;
                    }
                    Request::Reload => match engine.reload() {
                        Ok(generation) => reply(
                            &mut writer,
                            &format!(
                                "OK reloaded generation={} shards={}",
                                generation.number(),
                                generation.set().num_shards()
                            ),
                        ),
                        Err(e) => reply(&mut writer, &format!("ERR reload failed: {e}")),
                    },
                    Request::Stats => {
                        let latency = server_stats
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .summary();
                        let exec = executor_summary();
                        match latency {
                            Some(summary) => reply(&mut writer, &format!("OK {summary} | {exec}")),
                            None => reply(&mut writer, &format!("OK 0 queries | {exec}")),
                        }
                    }
                    Request::Query(tags) if tags.is_empty() => {
                        reply(&mut writer, "ERR QUERY needs at least one tag")
                    }
                    Request::Query(tags) => {
                        let generation = engine.current();
                        let set = generation.set();
                        let ids: Vec<TagId> = tags
                            .iter()
                            .filter_map(|name| set.folksonomy().tag_id(name))
                            .collect();
                        let t0 = Instant::now();
                        set.search_tags_auto(&mut session, set.concepts(), &ids, top_k, &mut hits);
                        let elapsed = t0.elapsed();
                        stats.record(elapsed);
                        server_stats
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .record(elapsed);
                        reply(&mut writer, &format_hits(set.folksonomy(), &hits))
                    }
                };
                if !ok {
                    break;
                }
            }
        }
    }
    match stats.summary() {
        Some(summary) => eprintln!("client {peer}: {summary}"),
        None => eprintln!("client {peer}: 0 queries"),
    }
}

/// Query-executor counters in the `STATS` reply format — one source of
/// truth for the field names the `serve_tcp` test asserts on.
fn executor_summary() -> String {
    let s = cubelsi::core::exec::stats();
    format!(
        "pool {} workers | inline {} | fanout {} | stolen {} | queued {}",
        s.pool_size, s.inline, s.fanout, s.stolen, s.queued
    )
}

fn run_serve(
    index: &str,
    top_k: usize,
    zero_copy: bool,
    listen: &str,
    threads: Option<usize>,
) -> Result<(), String> {
    configure_threads(threads)?;
    let mode = if zero_copy {
        LoadMode::ZeroCopy
    } else {
        LoadMode::Owned
    };
    let set = load_shard_set(index, zero_copy)?;
    let engine =
        ShardedEngine::new(set, PruningStrategy::default()).with_source(index.to_owned(), mode);
    let listener = TcpListener::bind(listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // The bound address goes to stdout (and is flushed) so scripts can
    // scrape the ephemeral port when listening on port 0.
    println!("listening {addr}");
    std::io::stdout().flush().ok();
    eprintln!("serving: one request per line (tags | RELOAD | STATS | QUIT | SHUTDOWN)");
    let stop = AtomicBool::new(false);
    let server_stats = Mutex::new(LatencyStats::default());
    crossbeam::thread::scope(|scope| {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let engine = &engine;
                    let stop = &stop;
                    let server_stats = &server_stats;
                    scope.spawn(move |_| {
                        handle_client(stream, engine, top_k, stop, addr, server_stats)
                    });
                }
                Err(e) => eprintln!("accept error: {e}"),
            }
        }
    })
    .map_err(|_| "a client handler panicked".to_owned())?;
    eprintln!("server stopped");
    Ok(())
}

fn run_one_shot(opts: &BuildOpts, data: &str, tags: &[String], top_k: usize) -> Result<(), String> {
    configure_threads(opts.threads)?;
    let corpus = load_corpus(data, opts.clean)?;
    let model = build_model(&corpus, opts)?;
    let mut session = model.session();
    let ids = resolve_ids(&corpus, tags);
    let mut hits = Vec::new();
    let t0 = Instant::now();
    model.search_ids_with(&mut session, &ids, top_k, &mut hits);
    eprintln!("queried {:?}", t0.elapsed());
    print_hits(&corpus, tags, &hits);
    Ok(())
}

fn main() -> ExitCode {
    let result = match parse_command(std::env::args().skip(1)) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Command::Build { opts, data, out }) => run_build(&opts, &data, &out),
        Ok(Command::Query {
            index,
            tags,
            top_k,
            repeat,
            zero_copy,
            threads,
        }) => run_query(&index, &tags, top_k, repeat, zero_copy, threads),
        Ok(Command::Serve {
            index,
            top_k,
            zero_copy,
            listen,
            threads,
        }) => run_serve(&index, top_k, zero_copy, &listen, threads),
        Ok(Command::OneShot {
            opts,
            data,
            tags,
            top_k,
        }) => run_one_shot(&opts, &data, &tags, top_k),
        Err(usage) => {
            eprintln!("error: {usage}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_command(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn build_subcommand_parses() {
        let cmd = parse(&[
            "build",
            "--concepts",
            "8",
            "--ratio",
            "25",
            "--compress",
            "d.tsv",
            "m.cubelsi",
        ]);
        assert_eq!(
            cmd.unwrap(),
            Command::Build {
                opts: BuildOpts {
                    concepts: Some(8),
                    reduction_ratio: 25.0,
                    clean: true,
                    seed: 2011,
                    threads: None,
                    shards: None,
                    compress: true,
                },
                data: "d.tsv".into(),
                out: "m.cubelsi".into(),
            }
        );
        assert!(parse(&["build", "d.tsv"]).is_err());
        assert!(parse(&["build", "d.tsv", "a", "b"]).is_err());
        assert!(parse(&["build", "--top", "5", "d.tsv", "m.cubelsi"]).is_err());
    }

    #[test]
    fn query_and_serve_parse() {
        assert_eq!(
            parse(&["query", "--top", "3", "m.cubelsi", "jazz", "piano"]).unwrap(),
            Command::Query {
                index: "m.cubelsi".into(),
                tags: vec!["jazz".into(), "piano".into()],
                top_k: 3,
                repeat: 1,
                zero_copy: false,
                threads: None,
            }
        );
        assert!(parse(&["query", "m.cubelsi"]).is_err(), "query needs tags");
        assert_eq!(
            parse(&["serve", "m.cubelsi"]).unwrap(),
            Command::Serve {
                index: "m.cubelsi".into(),
                top_k: 10,
                zero_copy: false,
                listen: "127.0.0.1:7878".into(),
                threads: None,
            }
        );
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", "a", "b"]).is_err());
    }

    #[test]
    fn repeat_and_zero_copy_flags() {
        assert_eq!(
            parse(&[
                "query",
                "--repeat",
                "50",
                "--zero-copy",
                "m.cubelsi",
                "jazz"
            ])
            .unwrap(),
            Command::Query {
                index: "m.cubelsi".into(),
                tags: vec!["jazz".into()],
                top_k: 10,
                repeat: 50,
                zero_copy: true,
                threads: None,
            }
        );
        assert_eq!(
            parse(&["serve", "--zero-copy", "m.cubelsi"]).unwrap(),
            Command::Serve {
                index: "m.cubelsi".into(),
                top_k: 10,
                zero_copy: true,
                listen: "127.0.0.1:7878".into(),
                threads: None,
            }
        );
        // Validation: integer >= 1.
        for bad in ["0", "-1", "abc", "1.5"] {
            let err = parse(&["query", "--repeat", bad, "m.cubelsi", "jazz"]).unwrap_err();
            assert!(err.contains("--repeat"), "repeat {bad}: {err}");
        }
        assert!(parse(&["query", "--repeat"]).is_err(), "missing value");
        // Serving-only flags are rejected where there is no artifact —
        // and `serve` has no single query to repeat.
        assert!(parse(&["build", "--zero-copy", "d.tsv", "m.cubelsi"])
            .unwrap_err()
            .contains("--zero-copy"));
        assert!(parse(&["build", "--repeat", "3", "d.tsv", "m.cubelsi"])
            .unwrap_err()
            .contains("--repeat"));
        assert!(parse(&["--zero-copy", "d.tsv", "jazz"])
            .unwrap_err()
            .contains("--zero-copy"));
        assert!(parse(&["--repeat", "3", "d.tsv", "jazz"])
            .unwrap_err()
            .contains("--repeat"));
        assert!(parse(&["serve", "--repeat", "3", "m.cubelsi"])
            .unwrap_err()
            .contains("--repeat"));
    }

    #[test]
    fn latency_stats_percentiles() {
        // Nearest-rank percentiles over a known sample.
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[42], 0.50), 42);
        assert_eq!(percentile(&[42], 0.99), 42);

        let mut stats = LatencyStats::default();
        assert!(stats.summary().is_none());
        for us in [100u64, 200, 300, 400] {
            stats.record(Duration::from_micros(us));
        }
        assert_eq!(stats.count(), 4);
        let s = stats.summary().unwrap();
        assert!(s.contains("4 queries"), "{s}");
        assert!(s.contains("p50 200.0 us"), "{s}");
        assert!(s.contains("queries/s"), "{s}");

        // Long-running serve processes must not grow without bound: past
        // the reservoir capacity the sample stays fixed-size while the
        // reported count stays exact.
        let extra = LatencyStats::RESERVOIR as u64 + 1_000;
        for _ in 0..extra {
            stats.record(Duration::from_micros(150));
        }
        assert_eq!(stats.count(), 4 + extra);
        assert_eq!(stats.sample.len(), LatencyStats::RESERVOIR);
        let s = stats.summary().unwrap();
        assert!(s.contains(&format!("{} queries", 4 + extra)), "{s}");
    }

    #[test]
    fn one_shot_stays_supported() {
        assert_eq!(
            parse(&["data.tsv", "music", "audio"]).unwrap(),
            Command::OneShot {
                opts: BuildOpts::default(),
                data: "data.tsv".into(),
                tags: vec!["music".into(), "audio".into()],
                top_k: 10,
            }
        );
        assert!(parse(&["data.tsv"]).is_err(), "one-shot needs tags");
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn ratio_validation_rejects_garbage() {
        // These previously flowed into core-dim computation as garbage
        // (round() of inf cast to usize); now they die at parse time.
        for bad in ["0", "-3", "nan", "inf", "-inf", "abc"] {
            let err = parse(&["--ratio", bad, "d.tsv", "q"]).unwrap_err();
            assert!(err.contains("--ratio"), "ratio {bad}: {err}");
        }
        assert!(parse(&["--ratio", "1.5", "d.tsv", "q"]).is_ok());
        assert!(parse(&["--ratio"]).is_err(), "missing value");
    }

    #[test]
    fn top_and_concepts_validation() {
        assert!(parse(&["--top", "0", "d.tsv", "q"])
            .unwrap_err()
            .contains("--top"));
        assert!(parse(&["--top", "-1", "d.tsv", "q"]).is_err());
        assert!(parse(&["--concepts", "0", "d.tsv", "q"])
            .unwrap_err()
            .contains("--concepts"));
        assert!(parse(&["--concepts", "1", "d.tsv", "q"]).is_ok());
        assert!(parse(&["--seed", "x", "d.tsv", "q"]).is_err());
    }

    #[test]
    fn threads_flag_validated_at_parse_time() {
        let cmd = parse(&["build", "--threads", "4", "d.tsv", "m.cubelsi"]).unwrap();
        match cmd {
            Command::Build { opts, .. } => assert_eq!(opts.threads, Some(4)),
            other => panic!("expected build, got {other:?}"),
        }
        for bad in ["0", "-2", "abc", "1.5"] {
            let err = parse(&["build", "--threads", bad, "d.tsv", "m.cubelsi"]).unwrap_err();
            assert!(err.contains("--threads"), "threads {bad}: {err}");
        }
        assert!(parse(&["build", "--threads"]).is_err(), "missing value");
        // One-shot builds accept it too.
        // The serving subcommands take --threads too: it sizes the query
        // executor (and can force sequential serving with 1).
        match parse(&["query", "--threads", "2", "m.cubelsi", "rock"]).unwrap() {
            Command::Query { threads, .. } => assert_eq!(threads, Some(2)),
            other => panic!("expected query, got {other:?}"),
        }
        match parse(&["serve", "--threads", "8", "m.shards"]).unwrap() {
            Command::Serve { threads, .. } => assert_eq!(threads, Some(8)),
            other => panic!("expected serve, got {other:?}"),
        }
        match parse(&["--threads", "2", "d.tsv", "rock"]).unwrap() {
            Command::OneShot { opts, .. } => assert_eq!(opts.threads, Some(2)),
            other => panic!("expected one-shot, got {other:?}"),
        }
    }

    #[test]
    fn thread_count_parser_rules() {
        assert_eq!(parse_thread_count("1", "CUBELSI_THREADS").unwrap(), 1);
        assert_eq!(parse_thread_count("64", "--threads").unwrap(), 64);
        for bad in ["0", "", "four", "-1"] {
            assert!(parse_thread_count(bad, "CUBELSI_THREADS").is_err(), "{bad}");
        }
    }

    #[test]
    fn serving_subcommands_reject_build_flags() {
        for (flag, value) in [
            ("--concepts", Some("8")),
            ("--ratio", Some("25")),
            ("--seed", Some("7")),
            ("--no-clean", None),
            ("--compress", None),
        ] {
            let mut args = vec!["query", flag];
            args.extend(value);
            args.extend(["m.cubelsi", "jazz"]);
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "query {flag}: {err}");

            let mut args = vec!["serve", flag];
            args.extend(value);
            args.push("m.cubelsi");
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "serve {flag}: {err}");
        }
    }

    #[test]
    fn shards_and_listen_flags() {
        match parse(&["build", "--shards", "4", "d.tsv", "m.shards"]).unwrap() {
            Command::Build { opts, .. } => assert_eq!(opts.shards, Some(4)),
            other => panic!("expected build, got {other:?}"),
        }
        for bad in ["0", "-1", "abc", "1.5", "100000"] {
            let err = parse(&["build", "--shards", bad, "d.tsv", "m"]).unwrap_err();
            assert!(err.contains("--shards"), "shards {bad}: {err}");
        }
        assert!(parse(&["build", "--shards"]).is_err(), "missing value");
        // --shards is baked in at build time; serving must reject it.
        assert!(parse(&["query", "--shards", "2", "m", "jazz"])
            .unwrap_err()
            .contains("--shards"));
        assert!(parse(&["serve", "--shards", "2", "m"])
            .unwrap_err()
            .contains("--shards"));
        assert!(parse(&["--shards", "2", "d.tsv", "jazz"])
            .unwrap_err()
            .contains("--shards"));

        match parse(&["serve", "--listen", "0.0.0.0:0", "m"]).unwrap() {
            Command::Serve { listen, .. } => assert_eq!(listen, "0.0.0.0:0"),
            other => panic!("expected serve, got {other:?}"),
        }
        assert!(parse(&["serve", "--listen", "not-an-addr", "m"])
            .unwrap_err()
            .contains("--listen"));
        assert!(parse(&["query", "--listen", "127.0.0.1:1", "m", "jazz"])
            .unwrap_err()
            .contains("--listen"));
        assert!(parse(&["build", "--listen", "127.0.0.1:1", "d.tsv", "m"])
            .unwrap_err()
            .contains("--listen"));
    }

    #[test]
    fn request_parser_commands_and_queries() {
        assert_eq!(parse_request(""), None);
        assert_eq!(parse_request("   \t "), None);
        assert_eq!(parse_request("RELOAD"), Some(Request::Reload));
        assert_eq!(parse_request("  STATS  "), Some(Request::Stats));
        assert_eq!(parse_request("QUIT"), Some(Request::Quit));
        assert_eq!(parse_request("SHUTDOWN"), Some(Request::Shutdown));
        assert_eq!(
            parse_request("jazz piano"),
            Some(Request::Query(vec!["jazz".into(), "piano".into()]))
        );
        // The explicit form keeps command-named tags queryable.
        assert_eq!(
            parse_request("QUERY RELOAD"),
            Some(Request::Query(vec!["RELOAD".into()]))
        );
        assert_eq!(
            parse_request("Q jazz"),
            Some(Request::Query(vec!["jazz".into()]))
        );
        // A bare QUERY is a request (answered with ERR), not a blank
        // line — every non-blank request line must earn exactly one
        // reply line.
        assert_eq!(parse_request("QUERY"), Some(Request::Query(Vec::new())));
        assert_eq!(parse_request("Q"), Some(Request::Query(Vec::new())));
        // A command word with trailing tags is a query, not a command —
        // commands are exact single words.
        assert_eq!(
            parse_request("RELOAD now"),
            Some(Request::Query(vec!["RELOAD".into(), "now".into()]))
        );
        // Lowercase command words are ordinary tags.
        assert_eq!(
            parse_request("reload"),
            Some(Request::Query(vec!["reload".into()]))
        );
    }

    #[test]
    fn raw_line_reader_handles_hostile_input() {
        use std::io::Cursor;
        let mut buf = Vec::new();

        // Normal lines, CRLF stripped, EOF after the last.
        let mut r = Cursor::new(b"alpha beta\r\ngamma\n".to_vec());
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None).unwrap(),
            RawLine::Line
        );
        assert_eq!(buf, b"alpha beta");
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None).unwrap(),
            RawLine::Line
        );
        assert_eq!(buf, b"gamma");
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None).unwrap(),
            RawLine::Eof
        );

        // A mid-line disconnect (no trailing newline) must read as EOF,
        // never as a runnable request.
        let mut r = Cursor::new(b"half a requ".to_vec());
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None).unwrap(),
            RawLine::Eof
        );

        // Oversized lines are rejected without buffering them whole.
        let mut big = vec![b'x'; 1000];
        big.push(b'\n');
        let mut r = Cursor::new(big);
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 100, None).unwrap(),
            RawLine::TooLong
        );

        // Non-UTF-8 bytes pass through the reader (rejection happens at
        // the protocol layer with an ERR reply, not a panic).
        let mut r = Cursor::new(b"\xFF\xFE\xFD\n".to_vec());
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None).unwrap(),
            RawLine::Line
        );
        assert!(std::str::from_utf8(&buf).is_err());
    }

    #[test]
    fn unknown_flags_and_help() {
        assert!(parse(&["--frobnicate", "d.tsv", "q"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["build", "-h"]).unwrap(), Command::Help);
    }

    #[test]
    fn no_clean_and_seed_flow_through() {
        let cmd = parse(&["--no-clean", "--seed", "7", "d.tsv", "rock"]).unwrap();
        match cmd {
            Command::OneShot { opts, .. } => {
                assert!(!opts.clean);
                assert_eq!(opts.seed, 7);
            }
            other => panic!("expected one-shot, got {other:?}"),
        }
    }
}
