//! Serving-side observability: the bounded latency reservoir behind the
//! `query --repeat` report and the server-wide `STATS` reply, the
//! pipeline counters (shed, timeouts, drops), and the Prometheus text
//! rendering served by the `METRICS` request.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Aggregate per-query latency statistics for the serving commands.
/// Memory is bounded: beyond [`LatencyStats::RESERVOIR`] samples, new
/// latencies replace random reservoir slots (Vitter's Algorithm R with a
/// deterministic xorshift stream), so a serve process that stays up for
/// billions of queries keeps a fixed footprint while the percentiles
/// remain an unbiased estimate; the count and queries/s stay exact.
#[derive(Debug)]
pub struct LatencyStats {
    sample: Vec<u64>,
    count: u64,
    total_ns: u128,
    rng: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            sample: Vec::new(),
            count: 0,
            total_ns: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl LatencyStats {
    /// Reservoir capacity: 64k samples ≈ 512 KB, enough for a stable p99.
    const RESERVOIR: usize = 1 << 16;

    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.count += 1;
        self.total_ns += ns as u128;
        if self.sample.len() < Self::RESERVOIR {
            self.sample.push(ns);
        } else {
            // xorshift64 step, then a slot in [0, count): keep with
            // probability RESERVOIR / count, as Algorithm R prescribes.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            let slot = (self.rng % self.count) as usize;
            if slot < Self::RESERVOIR {
                self.sample[slot] = ns;
            }
        }
    }

    /// Exact number of recorded queries (not capped by the reservoir).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact total recorded search time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// `(p50, p95, p99)` in nanoseconds over the reservoir, or `None`
    /// until at least one query was recorded.
    pub fn quantiles_ns(&self) -> Option<(u64, u64, u64)> {
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_unstable();
        Some((
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.95),
            percentile(&sorted, 0.99),
        ))
    }

    /// `count, p50/p95/p99, queries/s` over the recorded search times
    /// (search only — excludes I/O and result printing). `None` until at
    /// least one query was recorded.
    pub fn summary(&self) -> Option<String> {
        let (p50, p95, p99) = self.quantiles_ns()?;
        let micros = |ns: u64| ns as f64 / 1e3;
        let qps = self.count as f64 / (self.total_ns.max(1) as f64 / 1e9);
        Some(format!(
            "{} queries | p50 {:.1} us | p95 {:.1} us | p99 {:.1} us | {:.0} queries/s",
            self.count,
            micros(p50),
            micros(p95),
            micros(p99),
            qps,
        ))
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (`q` in (0, 1]).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The serving pipeline's degradation counters: every bound the server
/// enforces has a counter that moves when it fires, so overload is
/// observable instead of anecdotal.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections currently admitted (gauge; admission reserves the
    /// slot, the handler releases it on disconnect).
    pub active_connections: AtomicUsize,
    /// Connections shed with `ERR BUSY` because `--max-conns` slots
    /// were taken.
    pub busy_rejected: AtomicU64,
    /// Queries answered with `TIMEOUT` because they missed the
    /// `--deadline-ms` budget (before or after dispatch).
    pub deadline_timeouts: AtomicU64,
    /// Connections dropped because a reply could not be absorbed within
    /// the `--write-timeout-ms` budget (stalled readers).
    pub slow_client_drops: AtomicU64,
    /// Connections closed after `--idle-timeout-ms` without a request.
    pub idle_timeouts: AtomicU64,
    /// `accept()` failures (fd exhaustion etc.); each backs off the
    /// accept loop exponentially instead of spinning.
    pub accept_errors: AtomicU64,
}

impl ServerCounters {
    /// The pipeline-counter section of the one-line `STATS` reply.
    pub fn summary(&self) -> String {
        format!(
            "active {} | busy_rejected {} | deadline_timeouts {} | slow_client_drops {} \
             | idle_timeouts {} | accept_errors {}",
            // ORDER: SeqCst matches every other access to the
            // admission gauge (see `serve.rs`); the stats counters
            // below are Relaxed defaults — independent tallies, no
            // data published through them.
            self.active_connections.load(Ordering::SeqCst),
            self.busy_rejected.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            self.deadline_timeouts.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            self.slow_client_drops.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            self.idle_timeouts.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            self.accept_errors.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
        )
    }
}

/// Query-executor counters in the `STATS` reply format — one source of
/// truth for the field names the `serve_tcp` test asserts on.
pub fn executor_summary() -> String {
    let s = cubelsi::core::exec::stats();
    format!(
        "pool {} workers | inline {} | fanout {} | stolen {} | queued {} | late_dispatch {}",
        s.pool_size, s.inline, s.fanout, s.stolen, s.queued, s.late_dispatch
    )
}

fn put_counter(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn put_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders every serving metric in Prometheus text exposition format.
/// The reply is multi-line over the line protocol, so it is terminated
/// by a `# EOF` line (OpenMetrics-style) that doubles as the client's
/// end-of-reply sentinel.
pub fn prometheus_exposition(
    latency: &LatencyStats,
    counters: &ServerCounters,
    generation: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    let _ = writeln!(
        out,
        "# HELP cubelsi_query_latency_seconds Per-query search latency (server-wide reservoir)."
    );
    let _ = writeln!(out, "# TYPE cubelsi_query_latency_seconds summary");
    if let Some((p50, p95, p99)) = latency.quantiles_ns() {
        for (q, ns) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
            let _ = writeln!(
                out,
                "cubelsi_query_latency_seconds{{quantile=\"{q}\"}} {:.9}",
                ns as f64 / 1e9
            );
        }
    }
    let _ = writeln!(
        out,
        "cubelsi_query_latency_seconds_sum {:.9}",
        latency.total_seconds()
    );
    let _ = writeln!(
        out,
        "cubelsi_query_latency_seconds_count {}",
        latency.count()
    );

    put_counter(
        &mut out,
        "cubelsi_queries_total",
        "Queries answered since server start.",
        latency.count(),
    );
    put_gauge(
        &mut out,
        "cubelsi_active_connections",
        "Connections currently admitted by the handler pool.",
        // ORDER: SeqCst matches every other access to the admission
        // gauge (see `serve.rs`).
        counters.active_connections.load(Ordering::SeqCst) as u64,
    );
    put_counter(
        &mut out,
        "cubelsi_busy_rejected_total",
        "Connections shed with ERR BUSY at the admission gate.",
        counters.busy_rejected.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
    );
    put_counter(
        &mut out,
        "cubelsi_deadline_timeouts_total",
        "Queries answered with TIMEOUT for missing the deadline budget.",
        counters.deadline_timeouts.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
    );
    put_counter(
        &mut out,
        "cubelsi_slow_client_drops_total",
        "Connections dropped for not absorbing a reply within the write budget.",
        counters.slow_client_drops.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
    );
    put_counter(
        &mut out,
        "cubelsi_idle_timeouts_total",
        "Connections closed for exceeding the idle timeout.",
        counters.idle_timeouts.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
    );
    put_counter(
        &mut out,
        "cubelsi_accept_errors_total",
        "accept() failures absorbed with exponential backoff.",
        counters.accept_errors.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
    );
    put_gauge(
        &mut out,
        "cubelsi_index_generation",
        "Current hot-reload generation of the serving index.",
        generation,
    );

    let exec = cubelsi::core::exec::stats();
    put_gauge(
        &mut out,
        "cubelsi_exec_pool_workers",
        "Worker threads in the persistent query executor.",
        exec.pool_size as u64,
    );
    put_counter(
        &mut out,
        "cubelsi_exec_inline_total",
        "Dispatch decisions that stayed on the caller thread.",
        exec.inline,
    );
    put_counter(
        &mut out,
        "cubelsi_exec_fanout_total",
        "Dispatch decisions that engaged the worker pool.",
        exec.fanout,
    );
    put_counter(
        &mut out,
        "cubelsi_exec_stolen_total",
        "Tasks stolen across worker deques.",
        exec.stolen,
    );
    put_counter(
        &mut out,
        "cubelsi_exec_queued_total",
        "Tasks pushed through the executor injector.",
        exec.queued,
    );
    put_counter(
        &mut out,
        "cubelsi_exec_executed_total",
        "Tasks executed by pool workers and participating callers.",
        exec.executed,
    );
    put_counter(
        &mut out,
        "cubelsi_exec_late_dispatch_total",
        "Batches run sequentially because their deadline had already passed.",
        exec.late_dispatch,
    );

    // End-of-reply sentinel (no trailing newline: the reply writer adds
    // the final line terminator).
    out.push_str("# EOF");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_percentiles() {
        // Nearest-rank percentiles over a known sample.
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[42], 0.50), 42);
        assert_eq!(percentile(&[42], 0.99), 42);

        let mut stats = LatencyStats::default();
        assert!(stats.summary().is_none());
        for us in [100u64, 200, 300, 400] {
            stats.record(Duration::from_micros(us));
        }
        assert_eq!(stats.count(), 4);
        let s = stats.summary().unwrap();
        assert!(s.contains("4 queries"), "{s}");
        assert!(s.contains("p50 200.0 us"), "{s}");
        assert!(s.contains("queries/s"), "{s}");

        // Long-running serve processes must not grow without bound: past
        // the reservoir capacity the sample stays fixed-size while the
        // reported count stays exact.
        let extra = LatencyStats::RESERVOIR as u64 + 1_000;
        for _ in 0..extra {
            stats.record(Duration::from_micros(150));
        }
        assert_eq!(stats.count(), 4 + extra);
        assert_eq!(stats.sample.len(), LatencyStats::RESERVOIR);
        let s = stats.summary().unwrap();
        assert!(s.contains(&format!("{} queries", 4 + extra)), "{s}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut latency = LatencyStats::default();
        latency.record(Duration::from_micros(120));
        latency.record(Duration::from_micros(480));
        let counters = ServerCounters::default();
        counters.busy_rejected.fetch_add(3, Ordering::Relaxed);
        counters.deadline_timeouts.fetch_add(2, Ordering::Relaxed);
        counters.active_connections.fetch_add(1, Ordering::SeqCst);

        let text = prometheus_exposition(&latency, &counters, 5);

        // Structural validity: every line is a comment or `name value`
        // with a parseable float; every sample name was TYPE-declared;
        // the reply ends with the framing sentinel.
        let mut declared: Vec<String> = Vec::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut words = rest.split_whitespace();
                let name = words.next().expect("TYPE line names a metric");
                let kind = words.next().expect("TYPE line declares a kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary"),
                    "unexpected kind {kind} in {line:?}"
                );
                declared.push(name.to_owned());
                continue;
            }
            if line == "# EOF" {
                assert!(lines.peek().is_none(), "# EOF must be the last line");
                continue;
            }
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP "), "stray comment {line:?}");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample is `name value`");
            value.parse::<f64>().unwrap_or_else(|_| {
                panic!("sample value must parse as a float: {line:?}");
            });
            let base = name_part
                .split('{')
                .next()
                .unwrap_or(name_part)
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                declared.iter().any(|d| d == base),
                "sample {name_part} has no preceding TYPE declaration"
            );
        }
        assert!(text.ends_with("# EOF"));

        // The specific counters the fault suite watches are present.
        assert!(text.contains("cubelsi_busy_rejected_total 3"), "{text}");
        assert!(text.contains("cubelsi_deadline_timeouts_total 2"), "{text}");
        assert!(text.contains("cubelsi_active_connections 1"), "{text}");
        assert!(text.contains("cubelsi_queries_total 2"), "{text}");
        assert!(text.contains("cubelsi_index_generation 5"), "{text}");
        assert!(
            text.contains("cubelsi_query_latency_seconds{quantile=\"0.5\"}"),
            "{text}"
        );
    }
}
