//! `cubelsi-search` — build a persistent CubeLSI index over a TSV
//! tag-assignment dump and serve queries from it.
//!
//! The offline component (tensor build → Tucker → distances → concepts →
//! index) is expensive; online serving is cheap. The CLI therefore splits
//! the two across process lifetimes:
//!
//! ```sh
//! # data.tsv: one "user<TAB>tag<TAB>resource" line per assignment
//! cubelsi-search build data.tsv model.cubelsi            # offline, once
//! cubelsi-search build --shards 4 data.tsv model.shards  # manifest + 4 shard artifacts
//! cubelsi-search query model.cubelsi music audio         # online, instant
//! cubelsi-search query model.shards music audio          # sharded, same answers
//! cubelsi-search serve --listen 127.0.0.1:7878 model.shards   # TCP server
//!
//! # one-shot sugar (build in memory + query, nothing persisted):
//! cubelsi-search data.tsv music audio
//! ```
//!
//! `build` accepts `--concepts K`, `--ratio C`, `--seed S`, `--no-clean`,
//! and `--shards N` (emit a shard manifest plus `N` resource-partitioned
//! artifacts instead of one file); `query`/`serve` accept a single
//! artifact **or** a shard manifest (sniffed from the magic bytes),
//! `--top N`, and `--zero-copy` (serve the index straight out of the
//! artifact buffer); `query` additionally accepts `--repeat N` for quick
//! micro-measurement.
//!
//! `serve` is a concurrent multi-client TCP line-protocol server (one
//! request per line, one reply line per request) built as a **bounded
//! pipeline**: admission capped at `--max-conns` (excess connections are
//! shed with `ERR BUSY`), a fixed-cap handler pool instead of
//! thread-per-client, per-query deadlines (`--deadline-ms` →
//! `TIMEOUT ...` replies), slow-client write budgets, idle-connection
//! timeouts, and graceful drain on `SHUTDOWN`. Module layout:
//!
//! * [`cli`] — argument/env parsing and value validation;
//! * [`stats`] — latency reservoir, pipeline counters, and the
//!   Prometheus text rendering behind `STATS`/`METRICS`;
//! * [`serve`] — the serving pipeline and its fault-injection knobs
//!   (see that module's docs for the full overload model).
//!
//! Malformed requests (non-UTF-8 bytes, oversized lines) get an `ERR`
//! reply instead of taking the server down; per-client latency stats
//! (count, p50/p95/p99, queries/s) are logged on disconnect. Artifacts
//! are the versioned, checksummed binaries described in
//! `cubelsi_core::persist`; the manifest format lives in
//! `cubelsi_core::shard`.

mod cli;
mod serve;
mod stats;

use cli::{configure_threads, parse_command, BuildOpts, Command, USAGE};
use cubelsi::core::shard::{self, LoadMode, ShardSet};
use cubelsi::core::{persist, CubeLsi, CubeLsiConfig};
use cubelsi::folksonomy::{clean, read_tsv_file, CleaningConfig, Folksonomy};
use stats::LatencyStats;
use std::process::ExitCode;
use std::time::Instant;

/// Reads, optionally cleans, and validates the corpus.
fn load_corpus(path: &str, do_clean: bool) -> Result<Folksonomy, String> {
    let raw = read_tsv_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    eprintln!("loaded  {}", raw.stats());
    let corpus = if do_clean {
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        eprintln!("cleaned {} ({} rounds)", report.cleaned, report.rounds);
        cleaned
    } else {
        raw
    };
    if corpus.num_assignments() == 0 {
        return Err("no assignments survive; try --no-clean".to_owned());
    }
    Ok(corpus)
}

/// Runs the offline pipeline and prints per-phase timings (the Table V
/// quantities a deployment watches during a rebuild).
fn build_model(corpus: &Folksonomy, opts: &BuildOpts) -> Result<CubeLsi, String> {
    // Clamp the reduction ratios so the core keeps at least ~8 dimensions
    // per mode (or 2x the requested concepts) — the paper's c = 50 assumes
    // corpus dimensions in the thousands. The floor of 1.25 guarantees the
    // core is always *somewhat* trimmed: an untrimmed decomposition
    // reproduces the raw tensor, noise and all (§IV-D's purification needs
    // discarded components to purify anything).
    let min_j = opts.concepts.map_or(8usize, |k| (2 * k).max(8));
    let eff = |dim: usize| (opts.reduction_ratio).min((dim as f64 / min_j as f64).max(1.25));
    let config = CubeLsiConfig {
        reduction_ratios: (
            eff(corpus.num_users()),
            eff(corpus.num_tags()),
            eff(corpus.num_resources()),
        ),
        num_concepts: opts.concepts,
        seed: opts.seed,
        ..Default::default()
    };
    let model = CubeLsi::build(corpus, &config).map_err(|e| format!("building CubeLSI: {e}"))?;
    let t = model.timings();
    eprintln!(
        "built   fit {:.3}, {} concepts",
        model.decomposition().fit,
        model.concepts().num_concepts(),
    );
    eprintln!(
        "offline tensor {:?} | tucker {:?} | distances {:?} | clustering {:?} | indexing {:?} | total {:?}",
        t.tensor_build, t.tucker, t.distances, t.clustering, t.indexing, t.total()
    );
    Ok(model)
}

/// Loads a serving source — a single artifact or a shard manifest — into
/// a validated [`ShardSet`], reporting load time, shard count, and load
/// mode. The cheap path that replaces a full offline rebuild.
fn load_shard_set(path: &str, zero_copy: bool) -> Result<ShardSet, String> {
    let mode = if zero_copy {
        LoadMode::ZeroCopy
    } else {
        LoadMode::Owned
    };
    let t0 = Instant::now();
    let set = shard::load_source(path, mode).map_err(|e| format!("loading {path}: {e}"))?;
    let index_mode = if set.is_zero_copy() {
        "zero-copy index"
    } else {
        "owned index"
    };
    eprintln!(
        "loaded  {} in {:?} ({} shard(s); {} concepts; {index_mode})",
        set.folksonomy().stats(),
        t0.elapsed(),
        set.num_shards(),
        set.num_concepts(),
    );
    Ok(set)
}

/// Resolves query tag names to ids, warning about unknown names.
fn resolve_ids(corpus: &Folksonomy, tags: &[String]) -> Vec<cubelsi::folksonomy::TagId> {
    tags.iter()
        .filter_map(|name| {
            let id = corpus.tag_id(name);
            if id.is_none() {
                eprintln!("warning: unknown tag {name:?} ignored");
            }
            id
        })
        .collect()
}

/// Prints one query's ranked hits.
fn print_hits(corpus: &Folksonomy, tags: &[String], hits: &[cubelsi::core::RankedResource]) {
    if hits.is_empty() {
        println!("no results for {tags:?}");
        return;
    }
    println!("results for {tags:?}:");
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>3}. {}  ({:.4})",
            rank + 1,
            corpus.resource_name(hit.resource),
            hit.score
        );
    }
}

fn run_build(opts: &BuildOpts, data: &str, out: &str) -> Result<(), String> {
    configure_threads(opts.threads)?;
    let corpus = load_corpus(data, opts.clean)?;
    let model = build_model(&corpus, opts)?;
    let t0 = Instant::now();
    match opts.shards {
        None => {
            persist::save_to_path_with(out, &model, &corpus, opts.compress)
                .map_err(|e| format!("saving {out}: {e}"))?;
            let size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            eprintln!("saved   {out} ({size} bytes) in {:?}", t0.elapsed());
        }
        Some(n) => {
            let report = shard::save_sharded_with(out, &model, &corpus, n, opts.compress)
                .map_err(|e| format!("saving sharded {out}: {e}"))?;
            for shard_id in 0..n {
                eprintln!(
                    "shard   {} ({} resources, {} postings, {} bytes)",
                    report.shard_paths[shard_id].display(),
                    report.shard_resources[shard_id],
                    report.shard_postings[shard_id],
                    report.shard_bytes[shard_id],
                );
            }
            eprintln!("saved   {out} (manifest, {n} shards) in {:?}", t0.elapsed());
        }
    }
    Ok(())
}

fn run_query(
    index: &str,
    tags: &[String],
    top_k: usize,
    repeat: usize,
    zero_copy: bool,
    threads: Option<usize>,
) -> Result<(), String> {
    configure_threads(threads)?;
    let set = load_shard_set(index, zero_copy)?;
    let mut session = set.session();
    let mut stats = LatencyStats::default();
    // Resolve names exactly once, so an unknown tag warns once however
    // many repeats run.
    let ids = resolve_ids(set.folksonomy(), tags);
    let mut hits = Vec::new();
    let t0 = Instant::now();
    set.search_tags_auto(&mut session, set.concepts(), &ids, top_k, &mut hits);
    let elapsed = t0.elapsed();
    stats.record(elapsed);
    eprintln!("queried {elapsed:?}");
    print_hits(set.folksonomy(), tags, &hits);
    if repeat > 1 {
        // Re-run the same query on the warm session (results already
        // printed once) to measure steady-state latency.
        for _ in 1..repeat {
            let t0 = Instant::now();
            set.search_tags_auto(&mut session, set.concepts(), &ids, top_k, &mut hits);
            stats.record(t0.elapsed());
        }
        if let Some(summary) = stats.summary() {
            eprintln!("repeat  {summary}");
        }
    }
    Ok(())
}

fn run_one_shot(opts: &BuildOpts, data: &str, tags: &[String], top_k: usize) -> Result<(), String> {
    configure_threads(opts.threads)?;
    let corpus = load_corpus(data, opts.clean)?;
    let model = build_model(&corpus, opts)?;
    let mut session = model.session();
    let ids = resolve_ids(&corpus, tags);
    let mut hits = Vec::new();
    let t0 = Instant::now();
    model.search_ids_with(&mut session, &ids, top_k, &mut hits);
    eprintln!("queried {:?}", t0.elapsed());
    print_hits(&corpus, tags, &hits);
    Ok(())
}

fn main() -> ExitCode {
    let result = match parse_command(std::env::args().skip(1)) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Command::Build { opts, data, out }) => run_build(&opts, &data, &out),
        Ok(Command::Query {
            index,
            tags,
            top_k,
            repeat,
            zero_copy,
            threads,
        }) => run_query(&index, &tags, top_k, repeat, zero_copy, threads),
        Ok(Command::Serve {
            index,
            top_k,
            zero_copy,
            listen,
            threads,
            limits,
        }) => serve::run_serve(&index, top_k, zero_copy, &listen, threads, &limits),
        Ok(Command::OneShot {
            opts,
            data,
            tags,
            top_k,
        }) => run_one_shot(&opts, &data, &tags, top_k),
        Err(usage) => {
            eprintln!("error: {usage}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
