//! Command-line parsing and process-level configuration: every flag's
//! validation rule lives here, at parse time, so garbage values die with
//! a usage error instead of flowing into core arithmetic or the serving
//! pipeline. Environment fallbacks (`CUBELSI_THREADS`,
//! `CUBELSI_MAX_CONNS`, `CUBELSI_DEADLINE_MS`) go through the same
//! validators as their flags.

use cubelsi::core::shard;
use std::net::SocketAddr;
use std::time::Duration;

pub const USAGE: &str = "usage:
  cubelsi-search build [--concepts K] [--ratio C] [--seed S] [--threads N] [--no-clean] [--shards N] [--compress] DATA.tsv OUT
  cubelsi-search query [--top N] [--repeat N] [--zero-copy] [--threads N] MODEL QUERY_TAG...
  cubelsi-search serve [--top N] [--zero-copy] [--threads N] [--listen ADDR] [--max-conns N]
                       [--deadline-ms D] [--write-timeout-ms W] [--idle-timeout-ms I] MODEL
  cubelsi-search [build+query options] DATA.tsv QUERY_TAG...   (one-shot, nothing persisted)

MODEL is a single .cubelsi artifact or a shard manifest (build --shards).

options:
  --concepts K   fix the number of concepts (K >= 1; default: 95%-variance rule)
  --ratio C      Tucker reduction ratio (finite, > 0; default 50)
  --shards N     partition the index across N shard artifacts and write a
                 shard manifest at OUT (N >= 1; `build` only)
  --compress     also store the bit-packed/quantized posting mirror in the
                 artifact (format v3; `build` only — `query`/`serve` pick
                 it up transparently, results stay bit-identical)
  --top N        results per query (N >= 1; default 10)
  --repeat N     run the query N times on the warm session and report
                 latency stats (N >= 1; default 1; `query` only)
  --zero-copy    serve the index arrays straight out of the artifact
                 buffer instead of copying them (`query`/`serve` only)
  --listen ADDR  TCP listen address (default 127.0.0.1:7878; `serve` only;
                 port 0 picks a free port, printed as `listening ADDR`)
  --max-conns N  admit at most N simultaneous connections; excess clients
                 get `ERR BUSY` and a clean close (N >= 1; default 256;
                 the CUBELSI_MAX_CONNS env var sets the same; `serve` only)
  --deadline-ms D  per-query latency budget; a query that misses it gets a
                 `TIMEOUT` reply instead of results (D >= 1; default: no
                 deadline; the CUBELSI_DEADLINE_MS env var sets the same;
                 `serve` only)
  --write-timeout-ms W  per-reply write budget; a client that cannot
                 absorb a reply within it is dropped instead of wedging
                 its handler (W >= 1; default 5000; `serve` only)
  --idle-timeout-ms I   close connections idle longer than this
                 (I >= 1; default 300000; `serve` only)
  --seed S       seed for all stochastic components (default 2011)
  --threads N    worker threads for the offline build and the online query
                 executor (N >= 1; default: all cores; the CUBELSI_THREADS
                 env var sets the same knob; 1 forces sequential serving)
  --no-clean     skip the paper's \u{a7}VI-A cleaning pipeline

serve protocol (one request per line, one reply line per request):
  tag [tag...]   rank resources (OK\\t<n>\\t<name>  (<score>)...)
  QUERY tag...   same, explicit form (tags named RELOAD etc. stay queryable)
  RELOAD         reload the manifest/artifact from disk, swap under traffic
  STATS          server-wide latency percentiles + executor/server counters
  METRICS        the same counters in Prometheus text format (multi-line
                 reply, terminated by a `# EOF` line)
  QUIT           close this connection        SHUTDOWN   stop the server
                 (SHUTDOWN stops accepting, finishes in-flight queries,
                 then exits)";

/// Options of the offline build phase (shared by `build` and one-shot).
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOpts {
    pub concepts: Option<usize>,
    pub reduction_ratio: f64,
    pub clean: bool,
    pub seed: u64,
    pub threads: Option<usize>,
    pub shards: Option<usize>,
    pub compress: bool,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            concepts: None,
            reduction_ratio: 50.0,
            clean: true,
            seed: 2011,
            threads: None,
            shards: None,
            compress: false,
        }
    }
}

/// The serving pipeline's bounds as given on the command line; `None`
/// means "not set" and falls back to the matching environment variable,
/// then the default, in [`resolve_limits`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeLimits {
    pub max_conns: Option<usize>,
    pub deadline_ms: Option<u64>,
    pub write_timeout_ms: Option<u64>,
    pub idle_timeout_ms: Option<u64>,
}

/// [`ServeLimits`] after flag/env/default resolution — what the serving
/// pipeline actually enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedLimits {
    pub max_conns: usize,
    pub deadline: Option<Duration>,
    pub write_timeout: Duration,
    pub idle_timeout: Duration,
}

pub const DEFAULT_MAX_CONNS: usize = 256;
pub const DEFAULT_WRITE_TIMEOUT_MS: u64 = 5_000;
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 300_000;

/// Applies the flag → env → default fallback chain to the serve limits.
/// `env` is injected so tests can exercise the chain without mutating
/// process environment (which races across the parallel test harness).
pub fn resolve_limits(
    limits: &ServeLimits,
    env: impl Fn(&str) -> Option<String>,
) -> Result<ResolvedLimits, String> {
    let max_conns = match limits.max_conns {
        Some(n) => n,
        None => match env("CUBELSI_MAX_CONNS") {
            Some(v) => parse_count(&v, "CUBELSI_MAX_CONNS")?,
            None => DEFAULT_MAX_CONNS,
        },
    };
    let deadline_ms = match limits.deadline_ms {
        Some(d) => Some(d),
        None => match env("CUBELSI_DEADLINE_MS") {
            Some(v) => Some(parse_millis(&v, "CUBELSI_DEADLINE_MS")?),
            None => None,
        },
    };
    Ok(ResolvedLimits {
        max_conns,
        deadline: deadline_ms.map(Duration::from_millis),
        write_timeout: Duration::from_millis(
            limits.write_timeout_ms.unwrap_or(DEFAULT_WRITE_TIMEOUT_MS),
        ),
        idle_timeout: Duration::from_millis(
            limits.idle_timeout_ms.unwrap_or(DEFAULT_IDLE_TIMEOUT_MS),
        ),
    })
}

/// A fully parsed and value-validated invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Offline pipeline: TSV in, `.cubelsi` artifact out.
    Build {
        opts: BuildOpts,
        data: String,
        out: String,
    },
    /// Load an artifact and answer one query (optionally repeated for
    /// latency measurement).
    Query {
        index: String,
        tags: Vec<String>,
        top_k: usize,
        repeat: usize,
        zero_copy: bool,
        threads: Option<usize>,
    },
    /// Serve an artifact or shard manifest over a TCP line protocol
    /// (bounded handler pool, hot `RELOAD`, overload shedding,
    /// per-query deadlines, server-wide stats).
    Serve {
        index: String,
        top_k: usize,
        zero_copy: bool,
        listen: String,
        threads: Option<usize>,
        limits: ServeLimits,
    },
    /// Legacy sugar: build in memory, answer one query, discard.
    OneShot {
        opts: BuildOpts,
        data: String,
        tags: Vec<String>,
        top_k: usize,
    },
    /// `--help` anywhere.
    Help,
}

/// Flags accepted across subcommands; values are validated here, at parse
/// time, so garbage (`--ratio 0`, `--ratio nan`, `--top 0`,
/// `--max-conns 0`) dies with a usage error instead of flowing into
/// core-dimension arithmetic or the serving pipeline.
#[derive(Debug, Default)]
struct RawFlags {
    concepts: Option<usize>,
    ratio: Option<f64>,
    top: Option<usize>,
    repeat: Option<usize>,
    zero_copy: bool,
    seed: Option<u64>,
    threads: Option<usize>,
    no_clean: bool,
    shards: Option<usize>,
    compress: bool,
    listen: Option<String>,
    max_conns: Option<usize>,
    deadline_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
    idle_timeout_ms: Option<u64>,
}

pub fn parse_command(args: impl IntoIterator<Item = String>) -> Result<Command, String> {
    let mut flags = RawFlags::default();
    let mut positional: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--concepts" => {
                let v = args.next().ok_or("--concepts needs a value")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("--concepts must be an integer, got {v:?}"))?;
                if k < 1 {
                    return Err("--concepts must be >= 1".to_owned());
                }
                flags.concepts = Some(k);
            }
            "--ratio" => {
                let v = args.next().ok_or("--ratio needs a value")?;
                let c: f64 = v
                    .parse()
                    .map_err(|_| format!("--ratio must be a number, got {v:?}"))?;
                if !c.is_finite() || c <= 0.0 {
                    return Err(format!("--ratio must be a finite number > 0, got {v}"));
                }
                flags.ratio = Some(c);
            }
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--top must be an integer, got {v:?}"))?;
                if n < 1 {
                    return Err("--top must be >= 1".to_owned());
                }
                flags.top = Some(n);
            }
            "--repeat" => {
                let v = args.next().ok_or("--repeat needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--repeat must be an integer, got {v:?}"))?;
                if n < 1 {
                    return Err("--repeat must be >= 1".to_owned());
                }
                flags.repeat = Some(n);
            }
            "--zero-copy" => flags.zero_copy = true,
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--shards must be an integer, got {v:?}"))?;
                if !(1..=shard::MAX_SHARDS).contains(&n) {
                    return Err(format!(
                        "--shards must be in 1..={}, got {v}",
                        shard::MAX_SHARDS
                    ));
                }
                flags.shards = Some(n);
            }
            "--listen" => {
                let v = args.next().ok_or("--listen needs a value")?;
                if v.parse::<SocketAddr>().is_err() {
                    return Err(format!(
                        "--listen must be a socket address like 127.0.0.1:7878, got {v:?}"
                    ));
                }
                flags.listen = Some(v);
            }
            "--max-conns" => {
                let v = args.next().ok_or("--max-conns needs a value")?;
                flags.max_conns = Some(parse_count(&v, "--max-conns")?);
            }
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a value")?;
                flags.deadline_ms = Some(parse_millis(&v, "--deadline-ms")?);
            }
            "--write-timeout-ms" => {
                let v = args.next().ok_or("--write-timeout-ms needs a value")?;
                flags.write_timeout_ms = Some(parse_millis(&v, "--write-timeout-ms")?);
            }
            "--idle-timeout-ms" => {
                let v = args.next().ok_or("--idle-timeout-ms needs a value")?;
                flags.idle_timeout_ms = Some(parse_millis(&v, "--idle-timeout-ms")?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                flags.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed must be an integer, got {v:?}"))?,
                );
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                flags.threads = Some(parse_thread_count(&v, "--threads")?);
            }
            "--no-clean" => flags.no_clean = true,
            "--compress" => flags.compress = true,
            "--help" | "-h" => return Ok(Command::Help),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other} (see --help)"));
            }
            _ => positional.push(arg),
        }
    }

    let build_opts = |flags: &RawFlags| BuildOpts {
        concepts: flags.concepts,
        reduction_ratio: flags.ratio.unwrap_or(50.0),
        clean: !flags.no_clean,
        seed: flags.seed.unwrap_or(2011),
        threads: flags.threads,
        shards: flags.shards,
        compress: flags.compress,
    };
    let top_k = flags.top.unwrap_or(10);
    // Build-only flags must not be silently ignored on the serving
    // subcommands: the model shape is baked into the artifact, and
    // accepting `query --concepts 32` would let the user believe they
    // re-ranked with different parameters.
    let reject_build_flags = |flags: &RawFlags, cmd: &str| -> Result<(), String> {
        for (set, name) in [
            (flags.concepts.is_some(), "--concepts"),
            (flags.ratio.is_some(), "--ratio"),
            (flags.seed.is_some(), "--seed"),
            (flags.no_clean, "--no-clean"),
            (flags.shards.is_some(), "--shards"),
            (flags.compress, "--compress"),
        ] {
            if set {
                return Err(format!(
                    "{name} does not apply to `{cmd}`: those parameters are baked into the \
                     artifact at build time (see --help)"
                ));
            }
        }
        Ok(())
    };

    // Serving-only flags are meaningless without an artifact to serve.
    let reject_serve_flags = |flags: &RawFlags, cmd: &str| -> Result<(), String> {
        for (set, name) in [
            (flags.repeat.is_some(), "--repeat"),
            (flags.zero_copy, "--zero-copy"),
            (flags.listen.is_some(), "--listen"),
        ] {
            if set {
                return Err(format!(
                    "{name} only applies to artifact serving (`query`/`serve`), not `{cmd}` \
                     (see --help)"
                ));
            }
        }
        Ok(())
    };

    // Pipeline-limit flags bound the TCP server specifically; a one-shot
    // `query` has no connections to limit.
    let reject_limit_flags = |flags: &RawFlags, cmd: &str| -> Result<(), String> {
        for (set, name) in [
            (flags.listen.is_some(), "--listen"),
            (flags.max_conns.is_some(), "--max-conns"),
            (flags.deadline_ms.is_some(), "--deadline-ms"),
            (flags.write_timeout_ms.is_some(), "--write-timeout-ms"),
            (flags.idle_timeout_ms.is_some(), "--idle-timeout-ms"),
        ] {
            if set {
                return Err(format!(
                    "{name} only applies to `serve`, not `{cmd}` (see --help)"
                ));
            }
        }
        Ok(())
    };

    match positional.first().map(String::as_str) {
        Some("build") => {
            if flags.top.is_some() {
                return Err("--top does not apply to `build` (see --help)".to_owned());
            }
            reject_serve_flags(&flags, "build")?;
            reject_limit_flags(&flags, "build")?;
            let [_, data, out] = <[String; 3]>::try_from(positional)
                .map_err(|_| "build needs exactly DATA.tsv and OUT.cubelsi (see --help)")?;
            Ok(Command::Build {
                opts: build_opts(&flags),
                data,
                out,
            })
        }
        Some("query") => {
            reject_build_flags(&flags, "query")?;
            reject_limit_flags(&flags, "query")?;
            if positional.len() < 3 {
                return Err("query needs MODEL.cubelsi and at least one tag (see --help)".into());
            }
            let mut rest = positional.into_iter().skip(1);
            let index = rest.next().expect("length checked above");
            Ok(Command::Query {
                index,
                tags: rest.collect(),
                top_k,
                repeat: flags.repeat.unwrap_or(1),
                zero_copy: flags.zero_copy,
                threads: flags.threads,
            })
        }
        Some("serve") => {
            reject_build_flags(&flags, "serve")?;
            if flags.repeat.is_some() {
                return Err("--repeat does not apply to `serve` (see --help)".to_owned());
            }
            let [_, index] = <[String; 2]>::try_from(positional)
                .map_err(|_| "serve needs exactly MODEL (artifact or manifest; see --help)")?;
            Ok(Command::Serve {
                index,
                top_k,
                zero_copy: flags.zero_copy,
                listen: flags.listen.unwrap_or_else(|| "127.0.0.1:7878".to_owned()),
                threads: flags.threads,
                limits: ServeLimits {
                    max_conns: flags.max_conns,
                    deadline_ms: flags.deadline_ms,
                    write_timeout_ms: flags.write_timeout_ms,
                    idle_timeout_ms: flags.idle_timeout_ms,
                },
            })
        }
        Some(_) => {
            if positional.len() < 2 {
                return Err("missing query tags (see --help)".to_owned());
            }
            reject_serve_flags(&flags, "one-shot")?;
            reject_limit_flags(&flags, "one-shot")?;
            if flags.shards.is_some() {
                return Err(
                    "--shards needs a persisted artifact; use `build --shards` (see --help)"
                        .to_owned(),
                );
            }
            let mut rest = positional.into_iter();
            let data = rest.next().expect("length checked above");
            Ok(Command::OneShot {
                opts: build_opts(&flags),
                data,
                tags: rest.collect(),
                top_k,
            })
        }
        None => Err("missing arguments (see --help)".to_owned()),
    }
}

/// Parses and validates a worker-thread count (`N >= 1`), shared by the
/// `--threads` flag and the `CUBELSI_THREADS` environment variable.
pub fn parse_thread_count(v: &str, source: &str) -> Result<usize, String> {
    parse_count(v, source)
}

/// Parses an integer count with a `>= 1` floor (connection limits,
/// thread counts) — the typed-error twin of the `--ratio`/`--top`
/// validators.
fn parse_count(v: &str, source: &str) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("{source} must be an integer, got {v:?}"))?;
    if n < 1 {
        return Err(format!("{source} must be >= 1, got {v}"));
    }
    Ok(n)
}

/// Parses a millisecond value with a `>= 1` floor (deadlines, write and
/// idle timeouts), shared by the `--*-ms` flags and the
/// `CUBELSI_DEADLINE_MS` environment variable.
fn parse_millis(v: &str, source: &str) -> Result<u64, String> {
    let n: u64 = v
        .parse()
        .map_err(|_| format!("{source} must be an integer (milliseconds), got {v:?}"))?;
    if n < 1 {
        return Err(format!("{source} must be >= 1 (milliseconds), got {v}"));
    }
    Ok(n)
}

/// Applies the worker-pool size used by `cubelsi_linalg::parallel`: an
/// explicit `--threads` wins, otherwise `CUBELSI_THREADS`, otherwise the
/// machine's available parallelism.
pub fn configure_threads(flag: Option<usize>) -> Result<(), String> {
    let n = match flag {
        Some(n) => Some(n),
        None => match std::env::var("CUBELSI_THREADS") {
            Ok(v) => Some(parse_thread_count(&v, "CUBELSI_THREADS")?),
            Err(_) => None,
        },
    };
    if let Some(n) = n {
        cubelsi::linalg::parallel::set_num_threads(n);
        eprintln!("threads {n}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_command(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn build_subcommand_parses() {
        let cmd = parse(&[
            "build",
            "--concepts",
            "8",
            "--ratio",
            "25",
            "--compress",
            "d.tsv",
            "m.cubelsi",
        ]);
        assert_eq!(
            cmd.unwrap(),
            Command::Build {
                opts: BuildOpts {
                    concepts: Some(8),
                    reduction_ratio: 25.0,
                    clean: true,
                    seed: 2011,
                    threads: None,
                    shards: None,
                    compress: true,
                },
                data: "d.tsv".into(),
                out: "m.cubelsi".into(),
            }
        );
        assert!(parse(&["build", "d.tsv"]).is_err());
        assert!(parse(&["build", "d.tsv", "a", "b"]).is_err());
        assert!(parse(&["build", "--top", "5", "d.tsv", "m.cubelsi"]).is_err());
    }

    #[test]
    fn query_and_serve_parse() {
        assert_eq!(
            parse(&["query", "--top", "3", "m.cubelsi", "jazz", "piano"]).unwrap(),
            Command::Query {
                index: "m.cubelsi".into(),
                tags: vec!["jazz".into(), "piano".into()],
                top_k: 3,
                repeat: 1,
                zero_copy: false,
                threads: None,
            }
        );
        assert!(parse(&["query", "m.cubelsi"]).is_err(), "query needs tags");
        assert_eq!(
            parse(&["serve", "m.cubelsi"]).unwrap(),
            Command::Serve {
                index: "m.cubelsi".into(),
                top_k: 10,
                zero_copy: false,
                listen: "127.0.0.1:7878".into(),
                threads: None,
                limits: ServeLimits::default(),
            }
        );
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", "a", "b"]).is_err());
    }

    #[test]
    fn repeat_and_zero_copy_flags() {
        assert_eq!(
            parse(&[
                "query",
                "--repeat",
                "50",
                "--zero-copy",
                "m.cubelsi",
                "jazz"
            ])
            .unwrap(),
            Command::Query {
                index: "m.cubelsi".into(),
                tags: vec!["jazz".into()],
                top_k: 10,
                repeat: 50,
                zero_copy: true,
                threads: None,
            }
        );
        assert_eq!(
            parse(&["serve", "--zero-copy", "m.cubelsi"]).unwrap(),
            Command::Serve {
                index: "m.cubelsi".into(),
                top_k: 10,
                zero_copy: true,
                listen: "127.0.0.1:7878".into(),
                threads: None,
                limits: ServeLimits::default(),
            }
        );
        // Validation: integer >= 1.
        for bad in ["0", "-1", "abc", "1.5"] {
            let err = parse(&["query", "--repeat", bad, "m.cubelsi", "jazz"]).unwrap_err();
            assert!(err.contains("--repeat"), "repeat {bad}: {err}");
        }
        assert!(parse(&["query", "--repeat"]).is_err(), "missing value");
        // Serving-only flags are rejected where there is no artifact —
        // and `serve` has no single query to repeat.
        assert!(parse(&["build", "--zero-copy", "d.tsv", "m.cubelsi"])
            .unwrap_err()
            .contains("--zero-copy"));
        assert!(parse(&["build", "--repeat", "3", "d.tsv", "m.cubelsi"])
            .unwrap_err()
            .contains("--repeat"));
        assert!(parse(&["--zero-copy", "d.tsv", "jazz"])
            .unwrap_err()
            .contains("--zero-copy"));
        assert!(parse(&["--repeat", "3", "d.tsv", "jazz"])
            .unwrap_err()
            .contains("--repeat"));
        assert!(parse(&["serve", "--repeat", "3", "m.cubelsi"])
            .unwrap_err()
            .contains("--repeat"));
    }

    #[test]
    fn serve_limit_flags_parse_and_validate() {
        match parse(&[
            "serve",
            "--max-conns",
            "4",
            "--deadline-ms",
            "50",
            "--write-timeout-ms",
            "250",
            "--idle-timeout-ms",
            "1000",
            "m.shards",
        ])
        .unwrap()
        {
            Command::Serve { limits, .. } => assert_eq!(
                limits,
                ServeLimits {
                    max_conns: Some(4),
                    deadline_ms: Some(50),
                    write_timeout_ms: Some(250),
                    idle_timeout_ms: Some(1000),
                }
            ),
            other => panic!("expected serve, got {other:?}"),
        }
        // Each limit flag validates >= 1 at parse time, in the same
        // typed-error style as --ratio/--top.
        for flag in [
            "--max-conns",
            "--deadline-ms",
            "--write-timeout-ms",
            "--idle-timeout-ms",
        ] {
            for bad in ["0", "-1", "abc", "1.5"] {
                let err = parse(&["serve", flag, bad, "m.shards"]).unwrap_err();
                assert!(err.contains(flag), "{flag} {bad}: {err}");
            }
            assert!(parse(&["serve", flag]).is_err(), "{flag} missing value");
        }
    }

    #[test]
    fn limit_flags_rejected_outside_serve() {
        for (flag, value) in [
            ("--max-conns", "4"),
            ("--deadline-ms", "50"),
            ("--write-timeout-ms", "250"),
            ("--idle-timeout-ms", "1000"),
        ] {
            let err = parse(&["query", flag, value, "m.cubelsi", "jazz"]).unwrap_err();
            assert!(err.contains(flag), "query {flag}: {err}");
            let err = parse(&["build", flag, value, "d.tsv", "m.cubelsi"]).unwrap_err();
            assert!(err.contains(flag), "build {flag}: {err}");
            let err = parse(&[flag, value, "d.tsv", "jazz"]).unwrap_err();
            assert!(err.contains(flag), "one-shot {flag}: {err}");
        }
    }

    #[test]
    fn resolve_limits_flag_env_default_chain() {
        let no_env = |_: &str| None;
        // Defaults when nothing is set anywhere.
        let resolved = resolve_limits(&ServeLimits::default(), no_env).unwrap();
        assert_eq!(resolved.max_conns, DEFAULT_MAX_CONNS);
        assert_eq!(resolved.deadline, None);
        assert_eq!(
            resolved.write_timeout,
            Duration::from_millis(DEFAULT_WRITE_TIMEOUT_MS)
        );
        assert_eq!(
            resolved.idle_timeout,
            Duration::from_millis(DEFAULT_IDLE_TIMEOUT_MS)
        );

        // Env fills in unset flags (mirroring CUBELSI_THREADS).
        let env = |name: &str| match name {
            "CUBELSI_MAX_CONNS" => Some("7".to_owned()),
            "CUBELSI_DEADLINE_MS" => Some("40".to_owned()),
            _ => None,
        };
        let resolved = resolve_limits(&ServeLimits::default(), env).unwrap();
        assert_eq!(resolved.max_conns, 7);
        assert_eq!(resolved.deadline, Some(Duration::from_millis(40)));

        // Explicit flags win over the env.
        let flags = ServeLimits {
            max_conns: Some(2),
            deadline_ms: Some(9),
            ..ServeLimits::default()
        };
        let resolved = resolve_limits(&flags, env).unwrap();
        assert_eq!(resolved.max_conns, 2);
        assert_eq!(resolved.deadline, Some(Duration::from_millis(9)));

        // Env garbage dies with the same typed errors as the flags.
        for (var, bad) in [
            ("CUBELSI_MAX_CONNS", "0"),
            ("CUBELSI_MAX_CONNS", "lots"),
            ("CUBELSI_DEADLINE_MS", "0"),
            ("CUBELSI_DEADLINE_MS", "fast"),
        ] {
            let env = move |name: &str| (name == var).then(|| bad.to_owned());
            let err = resolve_limits(&ServeLimits::default(), env).unwrap_err();
            assert!(err.contains(var), "{var}={bad}: {err}");
        }
    }

    #[test]
    fn one_shot_stays_supported() {
        assert_eq!(
            parse(&["data.tsv", "music", "audio"]).unwrap(),
            Command::OneShot {
                opts: BuildOpts::default(),
                data: "data.tsv".into(),
                tags: vec!["music".into(), "audio".into()],
                top_k: 10,
            }
        );
        assert!(parse(&["data.tsv"]).is_err(), "one-shot needs tags");
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn ratio_validation_rejects_garbage() {
        // These previously flowed into core-dim computation as garbage
        // (round() of inf cast to usize); now they die at parse time.
        for bad in ["0", "-3", "nan", "inf", "-inf", "abc"] {
            let err = parse(&["--ratio", bad, "d.tsv", "q"]).unwrap_err();
            assert!(err.contains("--ratio"), "ratio {bad}: {err}");
        }
        assert!(parse(&["--ratio", "1.5", "d.tsv", "q"]).is_ok());
        assert!(parse(&["--ratio"]).is_err(), "missing value");
    }

    #[test]
    fn top_and_concepts_validation() {
        assert!(parse(&["--top", "0", "d.tsv", "q"])
            .unwrap_err()
            .contains("--top"));
        assert!(parse(&["--top", "-1", "d.tsv", "q"]).is_err());
        assert!(parse(&["--concepts", "0", "d.tsv", "q"])
            .unwrap_err()
            .contains("--concepts"));
        assert!(parse(&["--concepts", "1", "d.tsv", "q"]).is_ok());
        assert!(parse(&["--seed", "x", "d.tsv", "q"]).is_err());
    }

    #[test]
    fn threads_flag_validated_at_parse_time() {
        let cmd = parse(&["build", "--threads", "4", "d.tsv", "m.cubelsi"]).unwrap();
        match cmd {
            Command::Build { opts, .. } => assert_eq!(opts.threads, Some(4)),
            other => panic!("expected build, got {other:?}"),
        }
        for bad in ["0", "-2", "abc", "1.5"] {
            let err = parse(&["build", "--threads", bad, "d.tsv", "m.cubelsi"]).unwrap_err();
            assert!(err.contains("--threads"), "threads {bad}: {err}");
        }
        assert!(parse(&["build", "--threads"]).is_err(), "missing value");
        // One-shot builds accept it too.
        // The serving subcommands take --threads too: it sizes the query
        // executor (and can force sequential serving with 1).
        match parse(&["query", "--threads", "2", "m.cubelsi", "rock"]).unwrap() {
            Command::Query { threads, .. } => assert_eq!(threads, Some(2)),
            other => panic!("expected query, got {other:?}"),
        }
        match parse(&["serve", "--threads", "8", "m.shards"]).unwrap() {
            Command::Serve { threads, .. } => assert_eq!(threads, Some(8)),
            other => panic!("expected serve, got {other:?}"),
        }
        match parse(&["--threads", "2", "d.tsv", "rock"]).unwrap() {
            Command::OneShot { opts, .. } => assert_eq!(opts.threads, Some(2)),
            other => panic!("expected one-shot, got {other:?}"),
        }
    }

    #[test]
    fn thread_count_parser_rules() {
        assert_eq!(parse_thread_count("1", "CUBELSI_THREADS").unwrap(), 1);
        assert_eq!(parse_thread_count("64", "--threads").unwrap(), 64);
        for bad in ["0", "", "four", "-1"] {
            assert!(parse_thread_count(bad, "CUBELSI_THREADS").is_err(), "{bad}");
        }
    }

    #[test]
    fn serving_subcommands_reject_build_flags() {
        for (flag, value) in [
            ("--concepts", Some("8")),
            ("--ratio", Some("25")),
            ("--seed", Some("7")),
            ("--no-clean", None),
            ("--compress", None),
        ] {
            let mut args = vec!["query", flag];
            args.extend(value);
            args.extend(["m.cubelsi", "jazz"]);
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "query {flag}: {err}");

            let mut args = vec!["serve", flag];
            args.extend(value);
            args.push("m.cubelsi");
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "serve {flag}: {err}");
        }
    }

    #[test]
    fn shards_and_listen_flags() {
        match parse(&["build", "--shards", "4", "d.tsv", "m.shards"]).unwrap() {
            Command::Build { opts, .. } => assert_eq!(opts.shards, Some(4)),
            other => panic!("expected build, got {other:?}"),
        }
        for bad in ["0", "-1", "abc", "1.5", "100000"] {
            let err = parse(&["build", "--shards", bad, "d.tsv", "m"]).unwrap_err();
            assert!(err.contains("--shards"), "shards {bad}: {err}");
        }
        assert!(parse(&["build", "--shards"]).is_err(), "missing value");
        // --shards is baked in at build time; serving must reject it.
        assert!(parse(&["query", "--shards", "2", "m", "jazz"])
            .unwrap_err()
            .contains("--shards"));
        assert!(parse(&["serve", "--shards", "2", "m"])
            .unwrap_err()
            .contains("--shards"));
        assert!(parse(&["--shards", "2", "d.tsv", "jazz"])
            .unwrap_err()
            .contains("--shards"));

        match parse(&["serve", "--listen", "0.0.0.0:0", "m"]).unwrap() {
            Command::Serve { listen, .. } => assert_eq!(listen, "0.0.0.0:0"),
            other => panic!("expected serve, got {other:?}"),
        }
        assert!(parse(&["serve", "--listen", "not-an-addr", "m"])
            .unwrap_err()
            .contains("--listen"));
        assert!(parse(&["query", "--listen", "127.0.0.1:1", "m", "jazz"])
            .unwrap_err()
            .contains("--listen"));
        assert!(parse(&["build", "--listen", "127.0.0.1:1", "d.tsv", "m"])
            .unwrap_err()
            .contains("--listen"));
    }

    #[test]
    fn unknown_flags_and_help() {
        assert!(parse(&["--frobnicate", "d.tsv", "q"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["build", "-h"]).unwrap(), Command::Help);
    }

    #[test]
    fn no_clean_and_seed_flow_through() {
        let cmd = parse(&["--no-clean", "--seed", "7", "d.tsv", "rock"]).unwrap();
        match cmd {
            Command::OneShot { opts, .. } => {
                assert!(!opts.clean);
                assert_eq!(opts.seed, 7);
            }
            other => panic!("expected one-shot, got {other:?}"),
        }
    }
}
