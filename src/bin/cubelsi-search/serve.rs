//! The `serve` subcommand: a bounded, deadline-aware TCP line-protocol
//! server built to degrade specific connections with specific replies
//! instead of degrading the process.
//!
//! # Overload model
//!
//! * **Admission** — at most `--max-conns` connections are admitted at
//!   once. The accept loop sheds excess connections with an explicit
//!   `ERR BUSY` reply and a clean close (`busy_rejected` counter)
//!   instead of growing threads without bound.
//! * **Handler pool** — admitted connections go onto a queue drained by
//!   a pool of handler threads, grown on demand and capped at
//!   `--max-conns`; nothing in the pipeline spawns per-request threads.
//! * **Deadlines** — with `--deadline-ms D` each query gets a budget of
//!   `D` ms. The budget is checked *before* dispatch (so queueing delay
//!   cannot launch doomed work — the executor additionally degrades
//!   expired batches to sequential inline runs, `late_dispatch`) and
//!   enforced after: a query that misses it gets
//!   `TIMEOUT deadline D ms exceeded` instead of results
//!   (`deadline_timeouts`).
//! * **Write budgets** — every reply must be absorbed within
//!   `--write-timeout-ms`; a stalled reader is dropped
//!   (`slow_client_drops`) rather than wedging its handler on a full
//!   socket buffer.
//! * **Idle timeouts** — a connection idle past `--idle-timeout-ms`
//!   gets `ERR idle timeout` and is closed (`idle_timeouts`).
//! * **Accept errors** — `accept()` failures (EMFILE under fd
//!   exhaustion etc.) back off exponentially (1 ms doubling to 1 s)
//!   instead of spinning hot (`accept_errors`).
//! * **Drain** — `SHUTDOWN` stops admission, lets handlers finish
//!   their in-flight requests, answers still-queued connections with
//!   `ERR server shutting down`, and exits.
//!
//! # Fault injection
//!
//! Deterministic faults for the `serve_faults` suite, read once at
//! startup from env vars (never set in production):
//! `CUBELSI_FAULT_PREDISPATCH_DELAY_MS` (sleep between parse and
//! dispatch), `CUBELSI_FAULT_QUERY_DELAY_MS` (sleep inside the query's
//! deadline scope, as if the search itself were slow),
//! `CUBELSI_FAULT_SLOW_TAG` (restrict both delays to queries naming
//! this tag, so slow and healthy traffic can share one server), and
//! `CUBELSI_FAULT_REPLY_PAD` (append N padding bytes to query replies
//! to exercise the write budget).

use crate::cli::{configure_threads, resolve_limits, ResolvedLimits, ServeLimits};
use crate::stats::{executor_summary, prometheus_exposition, LatencyStats, ServerCounters};
use cubelsi::core::exec;
use cubelsi::core::shard::{LoadMode, ShardedEngine, ShardedSession};
use cubelsi::core::{PruningStrategy, RankedResource};
use cubelsi::folksonomy::{Folksonomy, TagId};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Upper bound on one request line. Anything longer gets an `ERR` reply
/// and the connection is closed — a client streaming an unbounded line
/// must not be able to grow server memory without limit.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Blocked reads wake this often to poll the stop flag and the idle
/// deadline, so neither shutdown nor idle detection waits on a silent
/// client.
const READ_POLL: Duration = Duration::from_millis(200);

/// Accept-error backoff bounds: first failure sleeps the minimum,
/// consecutive failures double it up to the maximum, any success resets.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Best-effort write budget for connections that never got a handler
/// (shed with `ERR BUSY`, or drained at shutdown).
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Request {
    /// Rank resources for these tag names.
    Query(Vec<String>),
    /// Hot-reload the manifest/artifact from disk and swap generations.
    Reload,
    /// Report the one-line server statistics.
    Stats,
    /// Report the same statistics in Prometheus text format (multi-line
    /// reply terminated by `# EOF`).
    Metrics,
    /// Close this connection.
    Quit,
    /// Stop the whole server (graceful drain).
    Shutdown,
}

// xtask:hostile-input:begin — everything through `drain_line` handles
// raw bytes from untrusted TCP clients; typed outcomes only (no panics,
// truncating casts, or raw indexing).

/// Parses one request line. `None` means a blank line (ignored). Control
/// commands are the exact uppercase words; `QUERY` (or `Q`) prefixes an
/// explicit tag query, so tags that collide with command names remain
/// queryable.
fn parse_request(line: &str) -> Option<Request> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return None;
    }
    let mut words = trimmed.split_whitespace();
    // Non-empty after trim, so a first word always exists; `?` keeps the
    // request path panic-free regardless.
    let head = words.next()?;
    let rest: Vec<String> = words.map(str::to_owned).collect();
    match head {
        "RELOAD" if rest.is_empty() => Some(Request::Reload),
        "STATS" if rest.is_empty() => Some(Request::Stats),
        "METRICS" if rest.is_empty() => Some(Request::Metrics),
        "QUIT" if rest.is_empty() => Some(Request::Quit),
        "SHUTDOWN" if rest.is_empty() => Some(Request::Shutdown),
        // A bare `QUERY` still gets a reply (an `ERR`, from the empty
        // tag list) — only genuinely blank lines are ignored, so a
        // lockstep client always reads exactly one line per request.
        "QUERY" | "Q" => Some(Request::Query(rest)),
        _ => {
            let mut tags = Vec::with_capacity(rest.len() + 1);
            tags.push(head.to_owned());
            tags.extend(rest);
            Some(Request::Query(tags))
        }
    }
}

/// Outcome of reading one raw request line with a byte cap.
#[derive(Debug, PartialEq, Eq)]
enum RawLine {
    /// A complete line (without the terminator) is in the buffer.
    Line,
    /// The peer closed the connection (mid-line bytes are discarded —
    /// a disconnect can never execute a half-received request).
    Eof,
    /// The line exceeded the cap; the connection should be closed.
    TooLong,
    /// The server is shutting down (`stop` observed while waiting for
    /// input); close the connection.
    Aborted,
    /// The connection sat idle past its deadline without completing a
    /// request; close it.
    IdleTimeout,
}

/// Reads one `\n`-terminated line into `buf` (CR stripped), enforcing
/// `max` bytes. Never allocates beyond the cap, and treats a final
/// unterminated fragment before EOF as a disconnect, not a request.
///
/// When `stop` or `idle_deadline` is provided, the underlying stream is
/// expected to carry a read timeout: a timed-out read is not an error
/// but a poll point — the stop flag and the idle deadline are checked
/// and the read resumes (partial-line bytes intact), so an idle client
/// can neither hold a handler thread hostage across a shutdown nor camp
/// on an admission slot forever.
fn read_raw_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
    stop: Option<&AtomicBool>,
    idle_deadline: Option<Instant>,
) -> std::io::Result<RawLine> {
    buf.clear();
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if (stop.is_some() || idle_deadline.is_some())
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // ORDER: SeqCst shutdown flag; see `Server::stop`.
                if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    return Ok(RawLine::Aborted);
                }
                if idle_deadline.is_some_and(|d| Instant::now() >= d) {
                    return Ok(RawLine::IdleTimeout);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(RawLine::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Ok(RawLine::TooLong);
                }
                // `pos` comes from `position` over this same slice, so
                // the carve always succeeds; the empty fallback keeps
                // the read loop panic-free.
                buf.extend_from_slice(available.get(..pos).unwrap_or(&[]));
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(RawLine::Line);
            }
            None => {
                let take = available.len();
                if buf.len() + take > max {
                    return Ok(RawLine::TooLong);
                }
                buf.extend_from_slice(available);
                reader.consume(take);
            }
        }
    }
}

/// Discards input up to and including the next `\n`, reading at most
/// `cap` further bytes. Used after an oversized request so the `ERR`
/// reply is not destroyed by a TCP reset (closing a socket with unread
/// inbound data resets the connection and discards transmitted replies).
fn drain_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<()> {
    let mut drained = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = available.len();
                drained += n;
                reader.consume(n);
                if drained > cap {
                    return Ok(());
                }
            }
        }
    }
}
// xtask:hostile-input:end — below here replies are formatted from
// trusted engine state.

/// Formats one query reply line: `OK\t<n>` followed by
/// `\t<name>  (<score>)` per hit — the same per-hit presentation as the
/// `query` subcommand, so scripted clients can diff the two directly.
fn format_hits(corpus: &Folksonomy, hits: &[RankedResource]) -> String {
    use std::fmt::Write as _;
    let mut line = format!("OK\t{}", hits.len());
    for hit in hits {
        let _ = write!(
            line,
            "\t{}  ({:.4})",
            corpus.resource_name(hit.resource),
            hit.score
        );
    }
    line
}

/// Deterministic fault knobs for the `serve_faults` suite, read once at
/// startup. All default to off; a production server never sets them.
#[derive(Debug, Default)]
struct FaultPlan {
    /// Sleep between parsing a query and dispatching it (simulates
    /// pre-dispatch queueing delay, so the before-dispatch deadline
    /// check is reachable deterministically).
    predispatch_delay: Option<Duration>,
    /// Sleep inside the query's deadline scope (simulates a slow
    /// search, so the after-dispatch TIMEOUT path is reachable).
    query_delay: Option<Duration>,
    /// When set, the two delays apply only to queries naming this tag —
    /// slow and healthy traffic can share one server.
    slow_tag: Option<String>,
    /// Append this many padding bytes to each query reply (inflates
    /// replies past socket buffers to exercise the write budget).
    reply_pad: usize,
}

impl FaultPlan {
    fn from_env(env: impl Fn(&str) -> Option<String>) -> FaultPlan {
        let millis = |name: &str| {
            env(name)
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis)
        };
        FaultPlan {
            predispatch_delay: millis("CUBELSI_FAULT_PREDISPATCH_DELAY_MS"),
            query_delay: millis("CUBELSI_FAULT_QUERY_DELAY_MS"),
            slow_tag: env("CUBELSI_FAULT_SLOW_TAG"),
            reply_pad: env("CUBELSI_FAULT_REPLY_PAD")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        }
    }

    fn active(&self) -> bool {
        self.predispatch_delay.is_some() || self.query_delay.is_some() || self.reply_pad > 0
    }

    /// Whether the delay faults apply to this query's tags.
    fn applies_to(&self, tags: &[String]) -> bool {
        match &self.slow_tag {
            Some(slow) => tags.iter().any(|t| t == slow),
            None => true,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Handler panics are contained by catch_unwind before these locks
    // unwind; state behind them is valid regardless.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything the accept loop and the handler pool share. Borrowed (not
/// `Arc`ed) across the scoped threads of [`run_serve`].
struct Server<'a> {
    engine: &'a ShardedEngine,
    top_k: usize,
    addr: SocketAddr,
    limits: ResolvedLimits,
    faults: FaultPlan,
    /// Set by `SHUTDOWN`: stops admission, aborts idle reads, and ends
    /// handler loops once the queue is drained.
    stop: AtomicBool,
    /// Admitted connections waiting for a handler.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Handlers currently parked on `queue_cv` — the accept loop spawns
    /// a new handler only when this is zero (and the pool is below its
    /// cap), so the pool grows to the offered concurrency and no
    /// further.
    idle_handlers: AtomicUsize,
    /// A handler caught a panic; surfaced as the server's exit error
    /// after the drain (the pool itself survives).
    panicked: AtomicBool,
    latency: Mutex<LatencyStats>,
    counters: ServerCounters,
}

impl Server<'_> {
    // xtask:no-alloc:begin — the per-request reply path: the reused
    // per-connection buffer is the only storage, so a steady-state
    // reply performs no allocation.

    /// Writes `line` plus `\n`, bounded by the per-reply write budget:
    /// each syscall may block up to the socket write timeout, and the
    /// whole reply must land within `write_timeout` — a reader stalled
    /// on a full socket buffer costs one budget, not a handler.
    fn write_reply(&self, stream: &mut TcpStream, out: &mut Vec<u8>, line: &str) -> bool {
        out.clear();
        out.extend_from_slice(line.as_bytes()); // ALLOC-OK: grow-only reused buffer.
        out.push(b'\n'); // ALLOC-OK: grow-only reused buffer (at capacity after warmup).
        let start = Instant::now();
        let mut sent = 0usize;
        while sent < out.len() {
            match stream.write(&out[sent..]) {
                Ok(0) => return false,
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    self.counters
                        .slow_client_drops
                        .fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
                    return false;
                }
                Err(_) => return false,
            }
            if sent < out.len() && start.elapsed() >= self.limits.write_timeout {
                self.counters
                    .slow_client_drops
                    .fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
                return false;
            }
        }
        true
    }

    // xtask:no-alloc:end

    fn timeout_reply(&self) -> String {
        let ms = self.limits.deadline.map_or(0, |d| d.as_millis());
        format!("TIMEOUT deadline {ms} ms exceeded")
    }

    /// Answers one query under the per-query deadline: checked before
    /// dispatch (queueing delay must not launch doomed work) and after
    /// (a result that missed its budget is degraded to `TIMEOUT`, not
    /// delivered late as if nothing happened). Fault delays are applied
    /// here, inside the same control flow they are meant to exercise.
    #[allow(clippy::too_many_arguments)]
    fn answer_query(
        &self,
        stream: &mut TcpStream,
        out: &mut Vec<u8>,
        session: &mut ShardedSession,
        hits: &mut Vec<RankedResource>,
        stats: &mut LatencyStats,
        tags: &[String],
    ) -> bool {
        let deadline = self.limits.deadline.map(|d| Instant::now() + d);
        let faulted = self.faults.active() && self.faults.applies_to(tags);
        if faulted {
            if let Some(d) = self.faults.predispatch_delay {
                std::thread::sleep(d);
            }
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.counters
                .deadline_timeouts
                .fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
            return self.write_reply(stream, out, &self.timeout_reply());
        }
        let generation = self.engine.current();
        let set = generation.set();
        let ids: Vec<TagId> = tags
            .iter()
            .filter_map(|name| set.folksonomy().tag_id(name))
            .collect();
        let t0 = Instant::now();
        exec::scoped_deadline(deadline, || {
            if faulted {
                if let Some(d) = self.faults.query_delay {
                    std::thread::sleep(d);
                }
            }
            set.search_tags_auto(session, set.concepts(), &ids, self.top_k, hits);
        });
        let elapsed = t0.elapsed();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.counters
                .deadline_timeouts
                .fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
            return self.write_reply(stream, out, &self.timeout_reply());
        }
        stats.record(elapsed);
        lock(&self.latency).record(elapsed);
        let mut line = format_hits(set.folksonomy(), hits);
        if faulted && self.faults.reply_pad > 0 {
            line.push('\t');
            line.push_str(&"x".repeat(self.faults.reply_pad));
        }
        self.write_reply(stream, out, &line)
    }

    /// Serves one admitted connection: reads line requests, answers
    /// queries on a reused scatter-gather session (adaptive dispatch
    /// through the query executor), and logs this client's latency
    /// stats on disconnect. Queries also feed the server-wide recorder
    /// behind the `STATS`/`METRICS` replies. Any I/O error (including a
    /// mid-query disconnect) ends this client only — the accept loop
    /// and the other handlers never see it.
    fn handle_client(&self, stream: TcpStream) {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        stream.set_nodelay(true).ok();
        // Reads poll rather than block indefinitely, so SHUTDOWN and
        // the idle deadline reach handlers whose clients are silent.
        stream.set_read_timeout(Some(READ_POLL)).ok();
        // Each write syscall is bounded by the reply budget; the
        // elapsed check in `write_reply` bounds the whole reply.
        stream
            .set_write_timeout(Some(self.limits.write_timeout))
            .ok();
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut stream = stream;
        let mut reader = BufReader::new(read_half);
        let mut session = self.engine.session();
        let mut stats = LatencyStats::default();
        let mut raw = Vec::new();
        let mut out = Vec::new();
        let mut hits: Vec<RankedResource> = Vec::new();

        loop {
            // Checked every iteration, not only in the read-timeout
            // arm: a client streaming requests back to back keeps the
            // read buffer full, and without this check such a client
            // could hold the whole drain hostage indefinitely.
            // ORDER: SeqCst shutdown flag — one total order across the
            // gate, handlers, and drain; request frequency, so the
            // fence cost is irrelevant.
            if self.stop.load(Ordering::SeqCst) {
                self.write_reply(&mut stream, &mut out, "ERR server shutting down");
                break;
            }
            let idle_deadline = Some(Instant::now() + self.limits.idle_timeout);
            match read_raw_line(
                &mut reader,
                &mut raw,
                MAX_REQUEST_BYTES,
                Some(&self.stop),
                idle_deadline,
            ) {
                Err(e) => {
                    eprintln!("client {peer}: read error: {e}");
                    break;
                }
                Ok(RawLine::Eof) => break,
                Ok(RawLine::Aborted) => {
                    self.write_reply(&mut stream, &mut out, "ERR server shutting down");
                    break;
                }
                Ok(RawLine::IdleTimeout) => {
                    // ORDER: stats counter; Relaxed default.
                    self.counters.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                    self.write_reply(&mut stream, &mut out, "ERR idle timeout");
                    break;
                }
                Ok(RawLine::TooLong) => {
                    // Bounded drain of the rest of the line, so the
                    // reply below reaches the client before the close.
                    drain_line(&mut reader, 8 * 1024 * 1024).ok();
                    self.write_reply(
                        &mut stream,
                        &mut out,
                        &format!("ERR request exceeds {MAX_REQUEST_BYTES} bytes"),
                    );
                    break;
                }
                Ok(RawLine::Line) => {
                    let Ok(line) = std::str::from_utf8(&raw) else {
                        if !self.write_reply(
                            &mut stream,
                            &mut out,
                            "ERR request is not valid UTF-8",
                        ) {
                            break;
                        }
                        continue;
                    };
                    let Some(request) = parse_request(line) else {
                        continue;
                    };
                    let ok = match request {
                        Request::Quit => {
                            self.write_reply(&mut stream, &mut out, "OK bye");
                            break;
                        }
                        Request::Shutdown => {
                            self.write_reply(&mut stream, &mut out, "OK shutting down");
                            // ORDER: SeqCst shutdown flag; see the
                            // loop-head load above.
                            self.stop.store(true, Ordering::SeqCst);
                            // Wake parked handlers and nudge the
                            // blocking accept loop so both observe the
                            // stop flag promptly.
                            self.queue_cv.notify_all();
                            TcpStream::connect(self.addr).ok();
                            break;
                        }
                        Request::Reload => match self.engine.reload() {
                            Ok(generation) => self.write_reply(
                                &mut stream,
                                &mut out,
                                &format!(
                                    "OK reloaded generation={} shards={}",
                                    generation.number(),
                                    generation.set().num_shards()
                                ),
                            ),
                            Err(e) => self.write_reply(
                                &mut stream,
                                &mut out,
                                &format!("ERR reload failed: {e}"),
                            ),
                        },
                        Request::Stats => {
                            let latency = lock(&self.latency).summary();
                            let head = latency.unwrap_or_else(|| "0 queries".to_owned());
                            let exec = executor_summary();
                            let pipeline = self.counters.summary();
                            self.write_reply(
                                &mut stream,
                                &mut out,
                                &format!("OK {head} | {exec} | {pipeline}"),
                            )
                        }
                        Request::Metrics => {
                            let text = {
                                let latency = lock(&self.latency);
                                prometheus_exposition(
                                    &latency,
                                    &self.counters,
                                    self.engine.current().number(),
                                )
                            };
                            self.write_reply(&mut stream, &mut out, &text)
                        }
                        Request::Query(tags) if tags.is_empty() => self.write_reply(
                            &mut stream,
                            &mut out,
                            "ERR QUERY needs at least one tag",
                        ),
                        Request::Query(tags) => self.answer_query(
                            &mut stream,
                            &mut out,
                            &mut session,
                            &mut hits,
                            &mut stats,
                            &tags,
                        ),
                    };
                    if !ok {
                        break;
                    }
                }
            }
        }
        match stats.summary() {
            Some(summary) => eprintln!("client {peer}: {summary}"),
            None => eprintln!("client {peer}: 0 queries"),
        }
    }

    /// One handler thread's life: pop admitted connections off the
    /// queue, serve each to completion, release its admission slot.
    /// Panics from a client are caught and recorded so one poisoned
    /// request cannot take down the pool; the stop flag is checked
    /// before popping so shutdown leaves leftover queued connections to
    /// the accept loop's drain pass.
    fn handler_loop(&self) {
        loop {
            let conn = {
                let mut queue = lock(&self.queue);
                loop {
                    // ORDER: SeqCst shutdown flag (total order).
                    if self.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    if let Some(conn) = queue.pop_front() {
                        break Some(conn);
                    }
                    // ORDER: SeqCst pool gauge — the accept loop's
                    // spawn decision and this park/unpark pair sit in
                    // one total order with the queue push, so a parked
                    // handler is never miscounted as busy.
                    self.idle_handlers.fetch_add(1, Ordering::SeqCst);
                    queue = self
                        .queue_cv
                        .wait(queue) // HOLDS-LOCK: condvar wait releases the guard.
                        .unwrap_or_else(PoisonError::into_inner);
                    self.idle_handlers.fetch_sub(1, Ordering::SeqCst); // ORDER: SeqCst pool gauge; see above.
                }
            };
            let Some(conn) = conn else { return };
            if panic::catch_unwind(AssertUnwindSafe(|| self.handle_client(conn))).is_err() {
                self.panicked.store(true, Ordering::SeqCst); // ORDER: SeqCst flag, read after scope join.
            }
            self.counters
                .active_connections
                .fetch_sub(1, Ordering::SeqCst); // ORDER: SeqCst admission gauge; see the gate.
        }
    }

    /// Sheds one connection at the admission gate: an explicit reply,
    /// then a clean close — never a silent drop, never a thread.
    fn shed(&self, mut stream: TcpStream) {
        // ORDER: stats counter; Relaxed default.
        self.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT)).ok();
        stream.write_all(b"ERR BUSY\n").ok();
        stream.shutdown(Shutdown::Write).ok();
    }
}

pub fn run_serve(
    index: &str,
    top_k: usize,
    zero_copy: bool,
    listen: &str,
    threads: Option<usize>,
    limits: &ServeLimits,
) -> Result<(), String> {
    configure_threads(threads)?;
    let limits = resolve_limits(limits, |name| std::env::var(name).ok())?;
    let mode = if zero_copy {
        LoadMode::ZeroCopy
    } else {
        LoadMode::Owned
    };
    let set = crate::load_shard_set(index, zero_copy)?;
    let engine =
        ShardedEngine::new(set, PruningStrategy::default()).with_source(index.to_owned(), mode);
    let listener = TcpListener::bind(listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // The bound address goes to stdout (and is flushed) so scripts can
    // scrape the ephemeral port when listening on port 0.
    println!("listening {addr}");
    std::io::stdout().flush().ok();
    eprintln!("serving: one request per line (tags | RELOAD | STATS | METRICS | QUIT | SHUTDOWN)");
    eprintln!(
        "limits  max-conns {} | deadline {} | write-timeout {:?} | idle-timeout {:?}",
        limits.max_conns,
        limits
            .deadline
            .map_or_else(|| "none".to_owned(), |d| format!("{d:?}")),
        limits.write_timeout,
        limits.idle_timeout,
    );
    let faults = FaultPlan::from_env(|name| std::env::var(name).ok());
    if faults.active() || faults.slow_tag.is_some() {
        eprintln!("faults  {faults:?} (CUBELSI_FAULT_* set — test mode)");
    }
    let server = Server {
        engine: &engine,
        top_k,
        addr,
        limits,
        faults,
        stop: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        idle_handlers: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        latency: Mutex::new(LatencyStats::default()),
        counters: ServerCounters::default(),
    };
    std::thread::scope(|scope| -> Result<(), String> {
        let mut spawned = 0usize;
        let mut backoff = ACCEPT_BACKOFF_MIN;
        for stream in listener.incoming() {
            // ORDER: SeqCst shutdown flag (total order).
            if server.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => {
                    backoff = ACCEPT_BACKOFF_MIN;
                    stream
                }
                Err(e) => {
                    server
                        .counters
                        .accept_errors
                        .fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
                    eprintln!("accept error: {e} (backing off {backoff:?})");
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    continue;
                }
            };
            // Admission gate: reserve a slot or shed with an explicit
            // reply. The handler releases the slot on disconnect.
            // ORDER: SeqCst admission gauge — the gate's load, the
            // reservation below, and the handlers' releases form one
            // total order, so the cap cannot be overshot by reordered
            // views; accept-loop frequency, so fence cost is noise.
            if server.counters.active_connections.load(Ordering::SeqCst) >= server.limits.max_conns
            {
                server.shed(stream);
                continue;
            }
            server
                .counters
                .active_connections
                .fetch_add(1, Ordering::SeqCst); // ORDER: SeqCst admission gauge; see the gate.
            lock(&server.queue).push_back(stream);
            // Grow the pool only when no handler is parked: if every
            // handler is busy and the queue is non-empty, the number of
            // handlers is below the number of admitted connections,
            // which the gate already capped at max_conns — so a queued
            // connection always has a handler coming.
            // ORDER: SeqCst pool gauge; totally ordered with the
            // park/unpark pair in `handler_loop`.
            if server.idle_handlers.load(Ordering::SeqCst) == 0 && spawned < server.limits.max_conns
            {
                spawned += 1;
                let srv = &server;
                if let Err(e) = std::thread::Builder::new()
                    .name(format!("cubelsi-conn-{spawned}"))
                    .spawn_scoped(scope, move || srv.handler_loop())
                {
                    // Without the spawn the queued connection may have
                    // no handler; stop cleanly rather than strand it.
                    // ORDER: SeqCst shutdown flag (total order).
                    server.stop.store(true, Ordering::SeqCst);
                    server.queue_cv.notify_all();
                    return Err(format!("spawning connection handler: {e}"));
                }
            }
            server.queue_cv.notify_one();
        }
        // Drain: admission has stopped; handlers finish their in-flight
        // requests (they observe `stop` at their next request boundary)
        // while connections still queued get an explicit reply instead
        // of a silent close.
        server.queue_cv.notify_all();
        let leftovers: Vec<TcpStream> = lock(&server.queue).drain(..).collect();
        for mut stream in leftovers {
            stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT)).ok();
            stream.write_all(b"ERR server shutting down\n").ok();
            stream.shutdown(Shutdown::Write).ok();
            server
                .counters
                .active_connections
                .fetch_sub(1, Ordering::SeqCst); // ORDER: SeqCst admission gauge; see the gate.
        }
        Ok(())
    })?;
    // ORDER: SeqCst panic flag; the scope join above already ordered
    // every handler before this read.
    if server.panicked.load(Ordering::SeqCst) {
        return Err("a client handler panicked".to_owned());
    }
    eprintln!("server stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parser_commands_and_queries() {
        assert_eq!(parse_request(""), None);
        assert_eq!(parse_request("   \t "), None);
        assert_eq!(parse_request("RELOAD"), Some(Request::Reload));
        assert_eq!(parse_request("  STATS  "), Some(Request::Stats));
        assert_eq!(parse_request("METRICS"), Some(Request::Metrics));
        assert_eq!(parse_request("QUIT"), Some(Request::Quit));
        assert_eq!(parse_request("SHUTDOWN"), Some(Request::Shutdown));
        assert_eq!(
            parse_request("jazz piano"),
            Some(Request::Query(vec!["jazz".into(), "piano".into()]))
        );
        // The explicit form keeps command-named tags queryable.
        assert_eq!(
            parse_request("QUERY RELOAD"),
            Some(Request::Query(vec!["RELOAD".into()]))
        );
        assert_eq!(
            parse_request("Q jazz"),
            Some(Request::Query(vec!["jazz".into()]))
        );
        // A bare QUERY is a request (answered with ERR), not a blank
        // line — every non-blank request line must earn exactly one
        // reply line.
        assert_eq!(parse_request("QUERY"), Some(Request::Query(Vec::new())));
        assert_eq!(parse_request("Q"), Some(Request::Query(Vec::new())));
        // A command word with trailing tags is a query, not a command —
        // commands are exact single words.
        assert_eq!(
            parse_request("RELOAD now"),
            Some(Request::Query(vec!["RELOAD".into(), "now".into()]))
        );
        assert_eq!(
            parse_request("METRICS now"),
            Some(Request::Query(vec!["METRICS".into(), "now".into()]))
        );
        // Lowercase command words are ordinary tags.
        assert_eq!(
            parse_request("reload"),
            Some(Request::Query(vec!["reload".into()]))
        );
    }

    #[test]
    fn raw_line_reader_handles_hostile_input() {
        use std::io::Cursor;
        let mut buf = Vec::new();

        // Normal lines, CRLF stripped, EOF after the last.
        let mut r = Cursor::new(b"alpha beta\r\ngamma\n".to_vec());
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None, None).unwrap(),
            RawLine::Line
        );
        assert_eq!(buf, b"alpha beta");
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None, None).unwrap(),
            RawLine::Line
        );
        assert_eq!(buf, b"gamma");
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None, None).unwrap(),
            RawLine::Eof
        );

        // A mid-line disconnect (no trailing newline) must read as EOF,
        // never as a runnable request.
        let mut r = Cursor::new(b"half a requ".to_vec());
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None, None).unwrap(),
            RawLine::Eof
        );

        // Oversized lines are rejected without buffering them whole.
        let mut big = vec![b'x'; 1000];
        big.push(b'\n');
        let mut r = Cursor::new(big);
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 100, None, None).unwrap(),
            RawLine::TooLong
        );

        // Non-UTF-8 bytes pass through the reader (rejection happens at
        // the protocol layer with an ERR reply, not a panic).
        let mut r = Cursor::new(b"\xFF\xFE\xFD\n".to_vec());
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None, None).unwrap(),
            RawLine::Line
        );
        assert!(std::str::from_utf8(&buf).is_err());
    }

    /// A reader that never has data — every read would block, like an
    /// idle socket with a read timeout.
    struct AlwaysBlocks;

    impl std::io::Read for AlwaysBlocks {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(ErrorKind::WouldBlock))
        }
    }

    #[test]
    fn raw_line_reader_polls_stop_and_idle_deadline() {
        let mut buf = Vec::new();

        // An already-expired idle deadline surfaces as IdleTimeout.
        let stop = AtomicBool::new(false);
        let mut r = BufReader::new(AlwaysBlocks);
        let past = Instant::now();
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, Some(&stop), Some(past)).unwrap(),
            RawLine::IdleTimeout
        );

        // The stop flag wins over the idle deadline: shutdown gets the
        // specific "shutting down" degradation, not a generic timeout.
        stop.store(true, Ordering::SeqCst);
        let mut r = BufReader::new(AlwaysBlocks);
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, Some(&stop), Some(past)).unwrap(),
            RawLine::Aborted
        );

        // Without stop or deadline, a would-block read is a plain error
        // (the caller did not arm polling).
        let mut r = BufReader::new(AlwaysBlocks);
        assert_eq!(
            read_raw_line(&mut r, &mut buf, 64, None, None)
                .unwrap_err()
                .kind(),
            ErrorKind::WouldBlock
        );
    }

    #[test]
    fn fault_plan_parses_env_and_scopes_to_slow_tag() {
        let none = FaultPlan::from_env(|_| None);
        assert!(!none.active());
        assert!(none.applies_to(&["anything".to_owned()]));

        let env = |name: &str| match name {
            "CUBELSI_FAULT_PREDISPATCH_DELAY_MS" => Some("5".to_owned()),
            "CUBELSI_FAULT_QUERY_DELAY_MS" => Some("7".to_owned()),
            "CUBELSI_FAULT_SLOW_TAG" => Some("molasses".to_owned()),
            "CUBELSI_FAULT_REPLY_PAD" => Some("1024".to_owned()),
            _ => None,
        };
        let plan = FaultPlan::from_env(env);
        assert!(plan.active());
        assert_eq!(plan.predispatch_delay, Some(Duration::from_millis(5)));
        assert_eq!(plan.query_delay, Some(Duration::from_millis(7)));
        assert_eq!(plan.reply_pad, 1024);
        assert!(plan.applies_to(&["molasses".to_owned(), "jazz".to_owned()]));
        assert!(!plan.applies_to(&["jazz".to_owned()]));
    }
}
